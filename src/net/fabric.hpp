#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include <optional>

#include "net/topology.hpp"
#include "sim/condition.hpp"
#include "sim/engine.hpp"
#include "sim/pool.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "storage/storage.hpp"

namespace gbc::net {

using Bytes = storage::Bytes;

/// Timing parameters of the interconnect. Defaults approximate the paper's
/// testbed: Mellanox DDR HCAs (high bandwidth, microsecond latency) where
/// connection management runs over a slow out-of-band channel and is
/// therefore ~three orders of magnitude more expensive than a message.
struct NetConfig {
  double link_bandwidth_mbps = 1250.0;  ///< per-NIC injection bandwidth, MB/s
  sim::Time wire_latency = sim::from_microseconds(1.5);
  sim::Time per_message_overhead = sim::from_microseconds(0.5);
  /// Out-of-band connection parameter exchange (paper Sec. 2.2: much more
  /// costly than TCP/IP connection setup).
  sim::Time oob_exchange = sim::from_microseconds(800);
  sim::Time qp_transition = sim::from_microseconds(200);  ///< RESET→RTS etc.
  sim::Time teardown_cost = sim::from_microseconds(300);
  /// Interconnect shape. The flat default reproduces the paper-scale
  /// crossbar exactly; `fat-tree:<radix>:<oversub>` makes end-to-end
  /// latency hop-counted (wire_latency per switch hop) and is what the
  /// sharded scale model contends per switch port on.
  TopologySpec topology;
};

/// Classification of a transfer; the meaning of ids is owned by the MPI
/// layer, the fabric only accounts for them.
enum class PacketKind : std::uint8_t {
  kEager,     // small message, payload travels immediately
  kRts,       // rendezvous request-to-send
  kCts,       // rendezvous clear-to-send
  kRdmaData,  // rendezvous zero-copy bulk data
  kFin,       // rendezvous completion notification
  kControl,   // checkpoint / connection control
};

struct Packet {
  int src = -1;
  int dst = -1;
  Bytes bytes = 0;
  PacketKind kind = PacketKind::kControl;
  std::uint64_t id = 0;
  /// Opaque payload owned by the MPI layer: a pooled, refcounted buffer
  /// (sim::MsgPool) instead of a heap-allocated shared_ptr<void>.
  sim::MsgBuf body;
};

enum class ConnState : std::uint8_t {
  kDisconnected,
  kConnecting,
  kConnected,
  kDraining,
};

class Fabric;

/// Relay hook for sharded full-stack runs (sim::ShardedEngine).
///
/// The protocol stack — connection manager, MPI matching, storage queues,
/// checkpoint service — is one logical process pinned to one shard. What CAN
/// leave that shard is the wire flight of a packet: the interval between the
/// moment it clears the sender NIC (`depart`) and the moment its delivery
/// callback must run (`arrival`). When a router is installed, the fabric
/// reserves the delivery's sequence number on its home engine at send time
/// and hands the flight to the router, which carries it through a relay LP
/// on the shard owning the destination rank and re-injects it under the
/// reserved number. The home shard therefore executes the exact (t, seq)
/// event stream a serial run would — sharded full-stack runs are
/// byte-identical to serial ones by construction. Without a router every
/// delivery schedules directly on the home engine (the serial path,
/// unchanged).
class ShardRouter {
 public:
  virtual ~ShardRouter() = default;
  /// Carry the delivery of a packet src -> dst departing the sender NIC at
  /// `depart` so that `fn` runs on the fabric's home shard at `arrival`
  /// under home-engine sequence number `seq`.
  virtual void relay(int src, int dst, sim::Time depart, sim::Time arrival,
                     std::uint64_t seq, sim::InlineFn fn) = 0;
};

/// Per-connection management (paper Sec. 4.2): the checkpoint protocols need
/// to tear down and rebuild *specific* connections rather than all of them,
/// and either endpoint may initiate (client/server, active/passive). A rank
/// that is frozen for a snapshot locks its endpoint; establishment toward it
/// blocks until it thaws.
class ConnectionManager {
 public:
  ConnectionManager(sim::Engine& eng, Fabric& fabric, int n, NetConfig cfg);

  /// Establishes (or waits for) the connection a<->b. Counts one setup when
  /// this call performed the establishment. Blocks while either endpoint is
  /// locked by a checkpoint freeze.
  sim::Task<void> ensure_connected(int a, int b);

  /// Drains in-flight traffic on a<->b and tears the connection down.
  /// No-op if already disconnected.
  sim::Task<void> disconnect(int a, int b);

  /// Waits until no packet is in flight on a<->b (channel flush).
  sim::Task<void> drain(int a, int b);

  ConnState state(int a, int b) const;
  bool connected(int a, int b) const {
    return state(a, b) == ConnState::kConnected;
  }

  /// Freeze-locks an endpoint: new establishments touching it stall.
  void lock_endpoint(int ep);
  void unlock_endpoint(int ep);
  bool endpoint_locked(int ep) const { return locked_[ep]; }

  /// Every currently-connected peer of `ep`, ascending.
  std::vector<int> connected_peers(int ep) const;

  // --- accounting ---
  std::int64_t total_setups() const noexcept { return setups_; }
  std::int64_t total_teardowns() const noexcept { return teardowns_; }
  int established_count() const;

  // Called by the fabric.
  void on_transmit_start(int a, int b);
  void on_delivered(int a, int b);

 private:
  struct Conn {
    explicit Conn(sim::Engine& eng) : cv(eng) {}
    ConnState state = ConnState::kDisconnected;
    int in_flight = 0;
    sim::Condition cv;  // state / drain changes
  };
  using Key = std::pair<int, int>;
  static Key key(int a, int b) {
    return a < b ? Key{a, b} : Key{b, a};
  }
  Conn& conn(int a, int b);
  const Conn* find(int a, int b) const;

  sim::Engine& eng_;
  NetConfig cfg_;
  int n_;
  std::map<Key, Conn> conns_;
  std::vector<bool> locked_;
  sim::Condition unlock_cv_;
  std::int64_t setups_ = 0;
  std::int64_t teardowns_ = 0;
};

/// The wire: per-endpoint serializing injection engine (LogGP-style: each
/// transfer occupies the sender NIC for overhead + bytes/bandwidth, then
/// arrives wire_latency later). Delivery invokes the receiver callback
/// registered by the MPI layer. Per-pair byte counts feed dynamic group
/// formation (paper Sec. 4.1).
class Fabric {
 public:
  using Deliver = std::function<void(Packet)>;

  Fabric(sim::Engine& eng, NetConfig cfg, int n_endpoints);

  int size() const noexcept { return n_; }
  const NetConfig& config() const noexcept { return cfg_; }
  sim::Engine& engine() noexcept { return eng_; }
  ConnectionManager& connections() noexcept { return *conn_mgr_; }

  /// End-to-end propagation delay src -> dst: wire_latency on a crossbar,
  /// wire_latency per switch hop on a fat-tree.
  sim::Time latency(int src, int dst) const;

  /// Lower bound of latency() over all distinct pairs — the conservative
  /// lookahead a sharded run of this fabric may use (sim::ShardedEngine):
  /// no cross-endpoint interaction can take effect sooner than this.
  sim::Time min_latency() const {
    return cfg_.wire_latency *
           std::max(1, cfg_.topology.min_hops());
  }

  void set_receiver(int ep, Deliver d) { receivers_[ep] = std::move(d); }

  /// Installs the cross-shard wire-flight relay (sharded runs only; see
  /// ShardRouter). Pass nullptr to restore the serial delivery path. The
  /// router must outlive the fabric.
  void set_shard_router(ShardRouter* r) noexcept { router_ = r; }

  /// Queues a packet on src's NIC. Caller (MPI layer) is responsible for the
  /// connection being established; asserted here.
  void transmit(Packet p);

  /// Control-plane message (coordination): does not require an established
  /// data connection — the C/R framework exchanges these over a dedicated
  /// channel. Costs per_message_overhead + wire_latency.
  void transmit_control(Packet p);

  /// Awaitable bulk copy src -> dst over the interconnect (checkpoint
  /// staging traffic: partner replication, replica fetch on restart). Like
  /// control traffic it uses a dedicated channel — no established data
  /// connection needed and no entry in the application traffic matrix — but
  /// it pays the real cost: the transfer serializes on src's NIC for
  /// overhead + bytes/bandwidth and completes wire_latency later.
  sim::Task<void> bulk_transfer(int src, int dst, Bytes bytes);

  // --- accounting ---
  std::int64_t packets_sent() const noexcept { return packets_; }
  Bytes bytes_sent() const noexcept { return bytes_; }
  Bytes bytes_between(int a, int b) const;
  std::int64_t messages_between(int a, int b) const;
  /// Data-plane traffic matrix (bytes), indexed [a*n+b], symmetric.
  const std::vector<std::int64_t>& traffic_matrix() const { return traffic_; }

 private:
  void enqueue(Packet p, bool data_plane);
  void deliver(Packet p, bool data_plane);

  sim::Engine& eng_;
  NetConfig cfg_;
  int n_;
  std::optional<FatTree> tree_;  // engaged when topology is fat-tree
  ShardRouter* router_ = nullptr;
  std::vector<Deliver> receivers_;
  std::vector<sim::Time> nic_busy_until_;
  std::unique_ptr<ConnectionManager> conn_mgr_;
  std::int64_t packets_ = 0;
  Bytes bytes_ = 0;
  std::vector<std::int64_t> traffic_;   // bytes
  std::vector<std::int64_t> msgcount_;  // messages
};

}  // namespace gbc::net
