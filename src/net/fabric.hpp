#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <deque>
#include <map>
#include <memory>
#include <new>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "net/topology.hpp"
#include "sim/condition.hpp"
#include "sim/engine.hpp"
#include "sim/lp_bus.hpp"
#include "sim/pool.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "storage/storage.hpp"

namespace gbc::net {

using Bytes = storage::Bytes;

/// Timing parameters of the interconnect. Defaults approximate the paper's
/// testbed: Mellanox DDR HCAs (high bandwidth, microsecond latency) where
/// connection management runs over a slow out-of-band channel and is
/// therefore ~three orders of magnitude more expensive than a message.
struct NetConfig {
  double link_bandwidth_mbps = 1250.0;  ///< per-NIC injection bandwidth, MB/s
  sim::Time wire_latency = sim::from_microseconds(1.5);
  sim::Time per_message_overhead = sim::from_microseconds(0.5);
  /// Out-of-band connection parameter exchange (paper Sec. 2.2: much more
  /// costly than TCP/IP connection setup).
  sim::Time oob_exchange = sim::from_microseconds(800);
  sim::Time qp_transition = sim::from_microseconds(200);  ///< RESET→RTS etc.
  sim::Time teardown_cost = sim::from_microseconds(300);
  /// Interconnect shape. The flat default reproduces the paper-scale
  /// crossbar exactly; `fat-tree:<radix>:<oversub>` makes end-to-end
  /// latency hop-counted (wire_latency per switch hop) and is what the
  /// sharded scale model contends per switch port on.
  TopologySpec topology;
};

/// Classification of a transfer; the meaning of ids is owned by the MPI
/// layer, the fabric only accounts for them.
enum class PacketKind : std::uint8_t {
  kEager,     // small message, payload travels immediately
  kRts,       // rendezvous request-to-send
  kCts,       // rendezvous clear-to-send
  kRdmaData,  // rendezvous zero-copy bulk data
  kFin,       // rendezvous completion notification
  kControl,   // checkpoint / connection control
};

/// Opaque by-value payload carried across shards inside a packet. Unlike
/// sim::MsgBuf (whose refcount and free list belong to one engine), a
/// WireBody owns its contents inline: created on the sender's shard,
/// destroyed on the receiver's, with no shared bookkeeping in between.
class WireBody {
 public:
  static constexpr std::size_t kInline = 64;

  WireBody() = default;
  WireBody(std::nullptr_t) noexcept {}  // NOLINT: empty-body literal
  WireBody(WireBody&& o) noexcept : ops_(std::exchange(o.ops_, nullptr)) {
    if (ops_) ops_->relocate(buf_, o.buf_);
  }
  WireBody& operator=(WireBody&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = std::exchange(o.ops_, nullptr);
      if (ops_) ops_->relocate(buf_, o.buf_);
    }
    return *this;
  }
  WireBody(const WireBody&) = delete;
  WireBody& operator=(const WireBody&) = delete;
  ~WireBody() { reset(); }

  template <typename T, typename... Args>
  static WireBody make(Args&&... args) {
    static_assert(sizeof(T) <= kInline && alignof(T) <= alignof(std::max_align_t),
                  "WireBody payload must fit the inline buffer");
    static_assert(std::is_nothrow_move_constructible_v<T>);
    WireBody b;
    ::new (static_cast<void*>(b.buf_)) T(std::forward<Args>(args)...);
    b.ops_ = &ops_for<T>;
    return b;
  }

  bool empty() const noexcept { return ops_ == nullptr; }

  template <typename T>
  T& get() {
    assert(ops_ == &ops_for<T> && "WireBody type mismatch");
    return *std::launder(reinterpret_cast<T*>(buf_));
  }

 private:
  struct Ops {
    void (*relocate)(std::byte* dst, std::byte* src) noexcept;
    void (*destroy)(std::byte* p) noexcept;
  };
  template <typename T>
  static constexpr Ops ops_for{
      [](std::byte* dst, std::byte* src) noexcept {
        T* s = std::launder(reinterpret_cast<T*>(src));
        ::new (static_cast<void*>(dst)) T(std::move(*s));
        s->~T();
      },
      [](std::byte* p) noexcept {
        std::launder(reinterpret_cast<T*>(p))->~T();
      }};

  void reset() noexcept {
    if (ops_) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInline];
  const Ops* ops_ = nullptr;
};

struct Packet {
  int src = -1;
  int dst = -1;
  Bytes bytes = 0;
  PacketKind kind = PacketKind::kControl;
  std::uint64_t id = 0;
  /// Opaque payload owned by the MPI layer, carried by value so a flight
  /// can cross shards without touching sender-side pools.
  WireBody body;
};

enum class ConnState : std::uint8_t {
  kDisconnected,
  kConnecting,
  kConnected,
  kDraining,
};

class Fabric;

/// Per-connection management (paper Sec. 4.2): the checkpoint protocols need
/// to tear down and rebuild *specific* connections rather than all of them,
/// and either endpoint may initiate (client/server, active/passive). A rank
/// that is frozen for a snapshot locks its endpoint; establishment toward it
/// blocks until it thaws.
///
/// The state machine is owned by the service LP (shard 0). Every transition
/// is mirrored to both endpoints with a one-hop message (see
/// Fabric::mirror_state), so rank-side code — the MPI send pump — consults
/// its local mirror and never reads this object directly. All methods here
/// must run on the service LP's engine.
class ConnectionManager {
 public:
  ConnectionManager(sim::Engine& eng, Fabric& fabric, int n, NetConfig cfg);

  /// Establishes (or waits for) the connection a<->b. Counts one setup when
  /// this call performed the establishment. Blocks while either endpoint is
  /// locked by a checkpoint freeze.
  sim::Task<void> ensure_connected(int a, int b);

  /// Drains in-flight traffic on a<->b and tears the connection down.
  /// No-op if already disconnected.
  sim::Task<void> disconnect(int a, int b);

  /// Waits until no packet is in flight on a<->b (channel flush). Queries
  /// both endpoints' sender-side in-flight counters by message.
  sim::Task<void> drain(int a, int b);

  ConnState state(int a, int b) const;
  bool connected(int a, int b) const {
    return state(a, b) == ConnState::kConnected;
  }

  /// Freeze-locks an endpoint: new establishments touching it stall.
  void lock_endpoint(int ep);
  void unlock_endpoint(int ep);
  bool endpoint_locked(int ep) const { return locked_[ep]; }

  /// Every currently-connected peer of `ep`, ascending.
  std::vector<int> connected_peers(int ep) const;

  // --- accounting ---
  std::int64_t total_setups() const noexcept { return setups_; }
  std::int64_t total_teardowns() const noexcept { return teardowns_; }
  int established_count() const;

 private:
  struct Conn {
    explicit Conn(sim::Engine& eng) : cv(eng) {}
    ConnState state = ConnState::kDisconnected;
    sim::Condition cv;  // state changes
  };
  using Key = std::pair<int, int>;
  static Key key(int a, int b) {
    return a < b ? Key{a, b} : Key{b, a};
  }
  Conn& conn(int a, int b);
  const Conn* find(int a, int b) const;
  /// Transition + mirror fan-out to both endpoints.
  void set_state(Conn& c, int a, int b, ConnState s);

  sim::Engine& eng_;
  Fabric& fab_;
  NetConfig cfg_;
  int n_;
  std::map<Key, Conn> conns_;
  std::vector<bool> locked_;
  sim::Condition unlock_cv_;
  std::int64_t setups_ = 0;
  std::int64_t teardowns_ = 0;
};

/// The wire: per-endpoint serializing injection engine (LogGP-style: each
/// transfer occupies the sender NIC for overhead + bytes/bandwidth, then
/// arrives wire_latency later). Delivery invokes the receiver callback
/// registered by the MPI layer. Per-pair byte counts feed dynamic group
/// formation (paper Sec. 4.1).
///
/// ## Per-rank ownership (DESIGN.md §13)
///
/// Every piece of mutable per-rank state — the NIC busy horizon, the
/// sender-side in-flight counters, the connection mirrors, the traffic
/// matrix rows — is owned by the rank's home shard; transmit() must run
/// there. Flights travel as pooled FlightRecs posted straight to the
/// destination rank's shard, where delivery goes through the LpBus inbox so
/// the order among same-instant arrivals is canonical at any shard count.
/// Records recycle to their home shard's pool over a lock-free return
/// stack, keeping the hot path allocation-free in sharded runs too.
class Fabric {
 public:
  using Deliver = std::function<void(Packet)>;

  /// `bus` connects the fabric to the cluster's LP topology; when null (the
  /// direct-construction test path) the fabric builds a single-engine bus
  /// of its own on `eng` and every LP runs serially on it.
  Fabric(sim::Engine& eng, NetConfig cfg, int n_endpoints,
         sim::LpBus* bus = nullptr);
  ~Fabric();

  int size() const noexcept { return n_; }
  const NetConfig& config() const noexcept { return cfg_; }
  sim::Engine& engine() noexcept { return eng_; }
  ConnectionManager& connections() noexcept { return *conn_mgr_; }
  sim::LpBus& bus() noexcept { return *bus_; }

  /// End-to-end propagation delay src -> dst: wire_latency on a crossbar,
  /// wire_latency per switch hop on a fat-tree.
  sim::Time latency(int src, int dst) const;

  /// Lower bound of latency() over all distinct pairs — the conservative
  /// lookahead a sharded run of this fabric may use (sim::ShardedEngine):
  /// no cross-endpoint interaction can take effect sooner than this.
  sim::Time min_latency() const {
    return cfg_.wire_latency *
           std::max(1, cfg_.topology.min_hops());
  }
  /// The lookahead-matrix floor every cross-LP message respects: NIC
  /// overhead plus the minimum propagation delay.
  sim::Time floor_hop() const {
    return cfg_.per_message_overhead + min_latency();
  }

  void set_receiver(int ep, Deliver d) { receivers_[ep] = std::move(d); }

  /// Queues a packet on src's NIC (call on src's shard). The MPI layer's
  /// send pump checks the sender-side connection mirror before calling.
  void transmit(Packet p);

  /// Control-plane message (coordination): does not require an established
  /// data connection — the C/R framework exchanges these over a dedicated
  /// channel. Costs per_message_overhead + wire_latency.
  void transmit_control(Packet p);

  /// Sender-side connection mirror check (the pump's fast path). Call on
  /// src's shard.
  bool mirror_connected(int src, int dst) const {
    const auto* link = rank_net_[src]->links.find(dst);
    return link != nullptr && link->mirror == ConnState::kConnected;
  }

  /// Rank-side establish-or-wait: consults src's local connection mirror,
  /// requesting establishment from the service LP when disconnected, and
  /// resumes once the mirror shows kConnected. Call on src's shard.
  sim::Task<void> ensure_connected_from(int src, int dst);

  /// Rank-side channel flush: waits until src has no packet in flight
  /// toward dst (sender-side counter). Call on src's shard.
  sim::Task<void> drain_outbound(int src, int dst);

  /// Sends a freeze-lock/unlock request for `ep` to the connection manager
  /// (one control hop). Call on ep's shard.
  void request_lock(int ep);
  void request_unlock(int ep);

  /// Awaitable bulk copy src -> dst over the interconnect (checkpoint
  /// staging traffic: partner replication, replica fetch on restart). Runs
  /// on the service LP: staging uses a dedicated per-node staging lane, so
  /// it serializes against other staging traffic from the same node but not
  /// against the application NIC.
  sim::Task<void> bulk_transfer(int src, int dst, Bytes bytes);

  // --- accounting (aggregate reads are for quiescent points) ---
  std::int64_t packets_sent() const noexcept;
  Bytes bytes_sent() const noexcept;
  /// Flight-record recycling stats across all per-shard pools (quiescent
  /// reads). `flight_recs_reused` counts pool acquisitions served from a
  /// free list — the allocation-counter evidence that the steady-state
  /// wire path is heap-allocation-free (always 0 with pools in ASan
  /// passthrough). `flight_recs_outstanding` counts live records plus any
  /// parked on cross-shard return stacks awaiting reclaim (swept home by
  /// ~Fabric, whose pool destructors assert none leak).
  std::uint64_t flight_recs_reused() const noexcept;
  std::size_t flight_recs_outstanding() const noexcept;
  Bytes bytes_between(int a, int b) const;
  std::int64_t messages_between(int a, int b) const;
  /// Data-plane traffic matrix (bytes), indexed [a*n+b], symmetrized from
  /// the per-sender rows. Only valid at quiescent points; during a run use
  /// copy_traffic_row() from each rank's own shard.
  std::vector<std::int64_t> traffic_matrix() const;
  /// Copies src's outbound traffic row (bytes to each peer). Call on src's
  /// shard; this is the race-free gather primitive dynamic group formation
  /// uses mid-run.
  std::vector<std::int64_t> copy_traffic_row(int src) const;

  /// Applies a connection-state mirror update at endpoint `ep` for `peer`
  /// (invoked via the bus by the ConnectionManager; runs on ep's shard).
  void mirror_state(int ep, int peer, ConnState s);
  /// Sender-side in-flight count src -> dst (rank-owned; read on src's
  /// shard).
  std::int64_t outbound_in_flight(int src, int dst) const;

 private:
  friend class ConnectionManager;

  /// One pooled wire flight: the packet plus its canonical inbox key.
  struct FlightRec {
    Packet pkt;
    std::uint64_t oseq = 0;
    Fabric* fab = nullptr;
    int home_shard = 0;
    FlightRec* free_next = nullptr;
  };

  /// Lock-free return stack: receivers push finished FlightRecs, the
  /// owning shard reclaims them in batch on its next acquire.
  struct alignas(64) ReturnStack {
    std::atomic<FlightRec*> head{nullptr};
    void push(FlightRec* r) noexcept {
      r->free_next = head.load(std::memory_order_relaxed);
      while (!head.compare_exchange_weak(r->free_next, r,
                                         std::memory_order_release,
                                         std::memory_order_relaxed)) {
      }
    }
    FlightRec* take_all() noexcept {
      return head.exchange(nullptr, std::memory_order_acquire);
    }
  };

  struct FlightArrive {
    FlightRec* rec;
    explicit FlightArrive(FlightRec* r) noexcept : rec(r) {}
    FlightArrive(FlightArrive&& o) noexcept
        : rec(std::exchange(o.rec, nullptr)) {}
    FlightArrive& operator=(FlightArrive&&) = delete;
    ~FlightArrive() {
      if (rec) rec->fab->recycle_remote(rec);
    }
    void operator()();
  };
  struct FlightDeliver {
    FlightRec* rec;
    explicit FlightDeliver(FlightRec* r) noexcept : rec(r) {}
    FlightDeliver(FlightDeliver&& o) noexcept
        : rec(std::exchange(o.rec, nullptr)) {}
    FlightDeliver& operator=(FlightDeliver&&) = delete;
    ~FlightDeliver() {
      if (rec) rec->fab->recycle_remote(rec);
    }
    void operator()();
  };

  /// Tiny per-peer table: a rank talks to a handful of peers, so a linear
  /// scan beats a node-based map on the per-message hot path (mirror check
  /// + in-flight count on every transmit). Deque storage keeps references
  /// stable across inserts — pumps and connection waiters hold a slot
  /// reference across suspension points while other peers get added.
  template <typename V>
  class PeerTable {
   public:
    V& operator[](int peer) {
      for (auto& s : slots_)
        if (s.first == peer) return s.second;
      slots_.emplace_back(peer, V{});
      return slots_.back().second;
    }
    const V* find(int peer) const {
      for (const auto& s : slots_)
        if (s.first == peer) return &s.second;
      return nullptr;
    }

   private:
    std::deque<std::pair<int, V>> slots_;
  };

  /// Mutable state owned by one rank's shard.
  struct RankNet {
    explicit RankNet(sim::Engine& eng) : conn_cv(eng), out_cv(eng) {}
    sim::Time nic_busy = 0;
    std::int64_t packets = 0;
    Bytes bytes = 0;
    /// Connection mirror per peer: last state flip received from the
    /// manager, plus whether an establishment request is outstanding.
    struct Link {
      ConnState mirror = ConnState::kDisconnected;
      bool requested = false;
    };
    PeerTable<Link> links;
    sim::Condition conn_cv;
    /// Sender-side in-flight packets per destination.
    PeerTable<std::int64_t> out;
    sim::Condition out_cv;
  };

  void enqueue(Packet p, bool data_plane);
  void deliver(Packet p);
  FlightRec* acquire_rec(int shard);
  void recycle_local(FlightRec* rec, int caller_shard);
  void recycle_remote(FlightRec* rec);
  void reclaim(int shard);

  sim::Engine& eng_;
  NetConfig cfg_;
  int n_;
  std::optional<FatTree> tree_;  // engaged when topology is fat-tree
  std::unique_ptr<sim::LpBus> own_bus_;
  sim::LpBus* bus_;
  std::vector<Deliver> receivers_;
  std::vector<std::unique_ptr<RankNet>> rank_net_;
  // Flight pools: one per shard, owned by that shard's worker; the return
  // stacks carry cross-shard frees home.
  std::vector<std::unique_ptr<sim::Pool<FlightRec>>> flight_pool_;
  std::unique_ptr<ReturnStack[]> return_stack_;
  std::unique_ptr<ConnectionManager> conn_mgr_;
  // Staging lanes, src-row ownership: node src's bulk transfers (replica /
  // erasure / restore staging) run on src's shard and serialize on src's
  // lane; counters are summed at quiescence by packets_sent()/bytes_sent().
  struct alignas(64) StagingLane {
    sim::Time busy_until = 0;
    std::int64_t packets = 0;
    Bytes bytes = 0;
  };
  std::vector<StagingLane> staging_;
  // Data-plane accounting, sender-row ownership: row src is written only by
  // src's shard.
  std::vector<std::int64_t> traffic_;   // bytes, [src*n+dst]
  std::vector<std::int64_t> msgcount_;  // messages, [src*n+dst]
};

}  // namespace gbc::net
