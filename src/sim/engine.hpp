#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/pool.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sim/timing_wheel.hpp"

namespace gbc::sim {

// Shared suspension record. Every leaf awaitable (timer wait, condition wait)
// owns one of these; the engine keeps a weak reference so abort_all() can
// wake every parked coroutine with the abort flag raised.
struct SuspendState {
  std::coroutine_handle<> handle{};
  bool settled = false;  // a wake has been delivered (or is scheduled)
  bool alive = true;     // awaiter frame still exists
};

/// Deterministic single-threaded discrete-event engine. Events at equal
/// timestamps fire in schedule order (FIFO), so runs are fully reproducible.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  Time now() const noexcept { return now_; }
  bool aborted() const noexcept { return aborted_; }

  /// Schedules fn at absolute simulated time t (must be >= now()).
  void schedule_at(Time t, InlineFn fn);
  /// Schedules fn after the given delay.
  void schedule_after(Time delay, InlineFn fn);
  /// Schedules fn at the current time, after already-queued same-time events.
  void schedule_now(InlineFn fn) { schedule_at(now_, std::move(fn)); }

  /// Sequence-number band for end-of-timestamp events: schedule_at_back
  /// ORs this bit into the event's tie-break key, so the event runs after
  /// every normally-scheduled event at the same timestamp regardless of
  /// when it was created. Back-band events keep creation order among
  /// themselves (the low bits still come from the shared counter).
  static constexpr std::uint64_t kBackBand = std::uint64_t{1} << 63;
  /// Schedules fn at time t, *after* every event scheduled at t through
  /// schedule_at/schedule_now — the LP bus settle sweep runs here so every
  /// same-instant arrival is already queued when deliveries sort.
  void schedule_at_back(Time t, InlineFn fn);

  /// Consumes the next schedule sequence number without queueing anything.
  /// Paired with schedule_at_reserved: a cross-shard relay reserves its
  /// delivery's place in this engine's FIFO order at send time, then the
  /// window barrier injects the delivery under that number — so the engine
  /// executes the exact (t, seq) stream a serial run would have.
  std::uint64_t reserve_seq() noexcept { return next_seq_++; }
  /// Schedules fn at time t under a sequence number previously obtained from
  /// reserve_seq(). t must be >= now().
  void schedule_at_reserved(Time t, std::uint64_t seq, InlineFn fn);

  /// Starts a detached simulated process. The body runs eagerly until its
  /// first suspension. Exceptions other than SimAborted are captured and
  /// rethrown from run().
  void spawn(Task<void> body);

  /// Runs until the event queue drains. Rethrows the first process error.
  void run();
  /// Runs events with timestamp <= t, then sets now() = t.
  void run_until(Time t);
  /// Wakes every suspended coroutine with SimAborted so frames unwind, then
  /// drains the queue. Used for mid-run teardown (failure injection).
  void abort_all();

  /// Absolute time of the earliest queued event, or kMaxSimTime when the
  /// queue is empty. The shard coordinator uses this to place the next
  /// conservative window; a serial run never needs it.
  Time next_event_time() const {
    Time t;
    return queue_.peek_time(t) ? t : kMaxSimTime;
  }
  bool queue_empty() const noexcept { return queue_.empty(); }

  int live_processes() const noexcept { return live_; }
  /// Total events dispatched by run()/run_until() so far; the basis for
  /// simulated-events-per-second throughput reporting.
  std::uint64_t events_processed() const noexcept { return events_; }

  // Internal hooks used by the detached process driver; not for users.
  void internal_process_error(std::exception_ptr e) { errors_.push_back(e); }
  void internal_process_exit() { --live_; }

  // --- used by awaitable primitives ---
  void register_suspension(const std::shared_ptr<SuspendState>& s);
  /// Allocates a SuspendState from the engine's recycling arena. The arena
  /// core is kept alive by every control block it produced, so records (and
  /// the weak_ptrs in suspensions_) may outlive the Engine safely.
  std::shared_ptr<SuspendState> make_suspend_state() {
    return std::allocate_shared<SuspendState>(
        ArenaAlloc<SuspendState>(suspend_arena_));
  }
  /// Arena backing suspension records; exposed for recycling tests.
  const std::shared_ptr<ArenaCore>& suspend_arena() const noexcept {
    return suspend_arena_;
  }
  /// Schedules the resume of a settled suspension at the current time.
  void wake(const std::shared_ptr<SuspendState>& s) { wake_impl(s); }
  /// Move form: steals the caller's reference instead of bumping the count
  /// (the wake callback is what keeps the state alive).
  void wake(std::shared_ptr<SuspendState>&& s) { wake_impl(std::move(s)); }

  /// Awaitable: suspends the current coroutine for `delay` sim-time.
  auto delay(Time d) { return DelayAwaiter{*this, d, nullptr}; }
  auto delay_until(Time t) { return DelayAwaiter{*this, t - now_, nullptr}; }

  struct DelayAwaiter {
    Engine& eng;
    Time delay;
    std::shared_ptr<SuspendState> state;

    bool await_ready() const noexcept {
      return delay <= 0 && !eng.aborted_;
    }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() {
      if (state) state->alive = false;
      if (eng.aborted_) throw SimAborted{};
    }
  };

 private:
  template <typename Ptr>
  void wake_impl(Ptr&& s) {
    if (s->settled) return;
    s->settled = true;
    schedule_now([s = std::forward<Ptr>(s)] {
      if (s->alive) s->handle.resume();
    });
  }

  void step(const WheelEvent& ev);
  std::uint32_t acquire_slot(InlineFn fn);

  // The wheel orders trivially-copyable 24-byte records; the callables live
  // in stable recycled slots on the side, so a steady-state simulation stops
  // allocating per event entirely.
  TimingWheel queue_;
  std::vector<InlineFn> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::weak_ptr<SuspendState>> suspensions_;
  std::shared_ptr<ArenaCore> suspend_arena_ = std::make_shared<ArenaCore>();
  std::vector<std::exception_ptr> errors_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_ = 0;
  int live_ = 0;
  bool aborted_ = false;
  int prune_countdown_ = 256;
};

}  // namespace gbc::sim
