#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <stdexcept>
#include <utility>

#include "sim/pool.hpp"

// Lazy coroutine task used for all simulated activities. A Task<T> does not
// start until it is co_awaited; completion resumes the awaiting coroutine via
// symmetric transfer, so arbitrarily deep call chains use O(1) stack.
namespace gbc::sim {

/// Thrown out of every suspension point when Engine::abort_all() tears the
/// simulation down; coroutine frames unwind normally and run destructors.
class SimAborted : public std::runtime_error {
 public:
  SimAborted() : std::runtime_error("simulation aborted") {}
};

template <typename T>
class Task;

namespace detail {

struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    auto cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

// PooledFrame routes every Task's coroutine frame through the thread-local
// FramePool: frames are created/destroyed at event rate on the hot path.
struct PromiseBase : PooledFrame {
  std::coroutine_handle<> continuation{};
  std::exception_ptr exception{};

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }

  // Awaiter interface: starts the task and resumes the awaiter on completion.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) {
    assert(handle_ && "co_await on empty Task");
    handle_.promise().continuation = awaiting;
    return handle_;
  }
  T await_resume() {
    auto& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
    return std::move(*p.value);
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_{};
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) {
    assert(handle_ && "co_await on empty Task");
    handle_.promise().continuation = awaiting;
    return handle_;
  }
  void await_resume() {
    auto& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_{};
};

}  // namespace gbc::sim
