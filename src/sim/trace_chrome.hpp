#pragma once

#include <string>

#include "sim/trace.hpp"

namespace gbc::sim {

/// Serializes a Trace into the Chrome trace-event JSON format, loadable in
/// chrome://tracing or https://ui.perfetto.dev. Each actor becomes a thread
/// row (rank 0.., or "global" for actor -1). Event pairing:
///   freeze / resume                    -> B/E span "frozen"
///   detail "begin ..." / "end ..."     -> B/E span named by category
///   cycle "begin ..." / "complete"     -> B/E span on the global row
///   anything else                      -> instant event
/// Timestamps convert from simulated nanoseconds to microseconds (the
/// format's native unit), so spans read in real simulated time.
std::string trace_to_chrome_json(const Trace& trace);

}  // namespace gbc::sim
