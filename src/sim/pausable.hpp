#pragma once

#include <cassert>

#include "sim/condition.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace gbc::sim {

/// Interruptible executor for one simulated process.
///
/// `compute(d)` models d nanoseconds of pure CPU work that an external agent
/// (the checkpoint controller, standing in for a BLCR signal) can pause and
/// resume at any simulated instant; paused time does not count as progress.
/// The class also records when the process is inside compute vs. inside the
/// messaging library, which the checkpoint layer uses to model how quickly a
/// busy process notices passive-coordination requests (Section 4.4 of the
/// paper: the helper thread bounds that latency; without it the request
/// waits for the next natural entry into the progress engine).
class Pausable {
 public:
  explicit Pausable(Engine& eng)
      : eng_(&eng), unpaused_(eng), progress_(eng) {}
  Pausable(const Pausable&) = delete;
  Pausable& operator=(const Pausable&) = delete;

  // --- pause control (checkpoint freeze) ---
  void pause() {
    if (++pause_depth_ == 1) pause_start_ = eng_->now();
  }
  void resume() {
    assert(pause_depth_ > 0);
    if (--pause_depth_ == 0) {
      paused_accum_ += eng_->now() - pause_start_;
      unpaused_.notify_all();
    }
  }
  bool paused() const noexcept { return pause_depth_ > 0; }

  /// Total paused (frozen) time accumulated so far, including any pause in
  /// progress. This is the per-process checkpoint downtime.
  Time total_paused() const noexcept {
    return paused_accum_ + (paused() ? eng_->now() - pause_start_ : 0);
  }

  // --- execution ---
  /// Burns `duration` of un-paused simulated CPU time.
  Task<void> compute(Time duration) {
    mark_progress();
    in_compute_ = true;
    compute_end_estimate_ = eng_->now() + duration;
    Time done = 0;
    while (done < duration) {
      while (paused()) co_await unpaused_.wait();
      const Time start = eng_->now();
      const Time paused_at_start = total_paused();
      compute_end_estimate_ = start + (duration - done);
      co_await eng_->delay(duration - done);
      done += (eng_->now() - start) - (total_paused() - paused_at_start);
    }
    in_compute_ = false;
    mark_progress();
  }

  /// Entry guard for library calls: parks while frozen so that a process is
  /// observed at a quiescent point for the duration of a snapshot. Returns a
  /// plain awaiter so the overwhelmingly common un-frozen case costs no
  /// coroutine frame; only an actually-frozen caller starts the slow-path
  /// wait task.
  struct FreezeAwaiter {
    Pausable* self;
    Task<void> slow{};
    bool await_ready() noexcept {
      self->mark_progress();
      return !self->paused();
    }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> h) {
      slow = self->freeze_wait();
      return slow.await_suspend(h);
    }
    void await_resume() {
      if (slow.valid()) slow.await_resume();
    }
  };
  FreezeAwaiter freeze_point() { return FreezeAwaiter{this}; }

  /// Called by the messaging library whenever this process drives progress
  /// (entering/leaving a call, completing a request).
  void mark_progress() {
    last_progress_ = eng_->now();
    progress_.notify_all();
  }

  bool in_compute() const noexcept { return in_compute_; }
  Time last_progress() const noexcept { return last_progress_; }
  /// When the current compute segment will end absent further pauses.
  Time compute_end_estimate() const noexcept { return compute_end_estimate_; }

  /// Models the latency until this process services an inter-group
  /// coordination request (paper Sec. 4.4). If the process is inside the
  /// library, service is immediate. If it is computing: with the helper
  /// thread enabled, service happens at the next helper tick (every
  /// `helper_interval` since the last progress) or at compute end, whichever
  /// is first; without it, only when compute ends.
  Task<void> await_service_point(bool async_progress, Time helper_interval) {
    if (!in_compute_) co_return;
    if (async_progress) {
      Time next_tick = last_progress_ + helper_interval;
      while (next_tick <= eng_->now()) next_tick += helper_interval;
      // Wait for a natural progress mark or for the helper tick.
      (void)co_await progress_.wait_for(next_tick - eng_->now());
      co_return;
    }
    // One progress mark = the library had control once = the request is
    // serviced, regardless of whether the process immediately resumes
    // computing. (Looping on in_compute_ here would starve: the app re-enters
    // compute before the scheduled wake runs.)
    co_await progress_.wait();
  }

 private:
  Task<void> freeze_wait() {
    while (paused()) co_await unpaused_.wait();
  }

  Engine* eng_;
  Condition unpaused_;
  Condition progress_;
  int pause_depth_ = 0;
  Time pause_start_ = 0;
  Time paused_accum_ = 0;
  Time last_progress_ = 0;
  Time compute_end_estimate_ = 0;
  bool in_compute_ = false;
};

}  // namespace gbc::sim
