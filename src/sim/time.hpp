#pragma once

#include <cstdint>

// Simulated time for the whole library. All timestamps and durations are
// int64 nanoseconds so that event ordering is exact and runs are bit-for-bit
// reproducible (no floating-point accumulation in the clock itself).
namespace gbc::sim {

using Time = std::int64_t;

inline constexpr Time kNanosecond = 1;
/// Largest representable timestamp ("run with no time bound").
inline constexpr Time kMaxSimTime = INT64_MAX;
inline constexpr Time kMicrosecond = 1000 * kNanosecond;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;

/// Converts seconds (possibly fractional) to simulated Time.
constexpr Time from_seconds(double s) {
  return static_cast<Time>(s * static_cast<double>(kSecond));
}

/// Converts simulated Time to (fractional) seconds for reporting.
constexpr double to_seconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

constexpr Time from_milliseconds(double ms) {
  return static_cast<Time>(ms * static_cast<double>(kMillisecond));
}

constexpr double to_milliseconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

constexpr Time from_microseconds(double us) {
  return static_cast<Time>(us * static_cast<double>(kMicrosecond));
}

}  // namespace gbc::sim
