#pragma once

#include <coroutine>
#include <deque>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace gbc::sim {

/// Level-less condition variable for coroutines: waiters park until a notify.
/// As with real condition variables, callers must re-check their predicate in
/// a loop — a notify wakes waiters but proves nothing about state.
class Condition {
 public:
  explicit Condition(Engine& eng) : eng_(&eng) {}
  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  struct WaitAwaiter {
    Condition& cv;
    std::shared_ptr<SuspendState> state;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      state = cv.eng_->make_suspend_state();
      state->handle = h;
      cv.eng_->register_suspension(state);
      cv.waiters_.push_back(state);
    }
    void await_resume() {
      if (state) state->alive = false;
      if (cv.eng_->aborted()) throw SimAborted{};
    }
  };

  /// Awaitable that parks until the next notify_all()/notify_one().
  WaitAwaiter wait() { return WaitAwaiter{*this, nullptr}; }

  /// Waits until notified or until `timeout` elapses; co_awaits to true when
  /// notified, false on timeout.
  Task<bool> wait_for(Time timeout);

  /// Repeatedly waits until pred() holds (checked before the first wait too).
  template <typename Pred>
  Task<void> wait_until(Pred pred) {
    while (!pred()) co_await wait();
  }

  void notify_all() {
    if (waiters_.empty()) return;
    auto snapshot = std::move(waiters_);
    waiters_.clear();
    // The snapshot's references are dead after this loop, so hand each one
    // to the engine by move: the wake callback inherits the reference
    // instead of paying an atomic refcount bump per waiter.
    for (auto& s : snapshot) eng_->wake(std::move(s));
  }

  /// Resumes every waiter *inline*, without the usual schedule_now hop.
  /// Only for callers already running in a top-level event context (the LP
  /// bus settle sweep) where re-entering the waiters immediately is safe:
  /// the waiter's continuation runs to its next suspension inside this
  /// call. Saves one wheel event per waiter on the message hot path.
  void notify_all_inline() {
    if (waiters_.empty()) return;
    auto snapshot = std::move(waiters_);
    waiters_.clear();
    for (auto& s : snapshot) {
      if (!s->settled && s->alive) {
        s->settled = true;
        s->handle.resume();
      }
    }
  }

  void notify_one() {
    while (!waiters_.empty()) {
      auto s = std::move(waiters_.front());
      waiters_.erase(waiters_.begin());
      if (!s->settled && s->alive) {
        eng_->wake(std::move(s));
        return;
      }
    }
  }

  bool has_waiters() const noexcept { return !waiters_.empty(); }
  Engine& engine() const noexcept { return *eng_; }

 private:
  Engine* eng_;
  std::vector<std::shared_ptr<SuspendState>> waiters_;
};

/// A gate is a persistent-state Condition: when open, waiters pass through
/// immediately; when closed, they park until the gate opens.
class Gate {
 public:
  Gate(Engine& eng, bool open) : cv_(eng), open_(open) {}

  bool is_open() const noexcept { return open_; }
  void open() {
    if (!open_) {
      open_ = true;
      cv_.notify_all();
    }
  }
  void close() { open_ = false; }

  Task<void> pass() {
    while (!open_) co_await cv_.wait();
  }

 private:
  Condition cv_;
  bool open_;
};

/// Unbounded FIFO mailbox between coroutines.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Engine& eng) : cv_(eng) {}

  void send(T item) {
    items_.push_back(std::move(item));
    cv_.notify_all();
  }

  Task<T> recv() {
    while (items_.empty()) co_await cv_.wait();
    T item = std::move(items_.front());
    items_.pop_front();
    co_return item;
  }

  bool empty() const noexcept { return items_.empty(); }
  std::size_t size() const noexcept { return items_.size(); }

 private:
  Condition cv_;
  std::deque<T> items_;
};

}  // namespace gbc::sim
