#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/condition.hpp"
#include "sim/engine.hpp"
#include "sim/inline_fn.hpp"
#include "sim/shard_engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace gbc::sim {

/// Which shard owns logical process `lp` when `nlps` LPs are split across
/// `shards` contiguous blocks. This is the single ownership rule shared by
/// the scale model and the full protocol stack (DESIGN.md §13): rank r lives
/// on shard r*S/n, and the service LP (id = nlps) is pinned to shard 0.
constexpr int lp_owner_shard(int lp, int nlps, int shards) {
  return static_cast<int>(static_cast<std::int64_t>(lp) * shards / nlps);
}

/// Message bus between logical processes (LPs) of one simulated cluster.
///
/// LP ids 0..nranks-1 are the MPI ranks; id nranks is the *service LP*
/// (checkpoint coordinator, connection manager, shared storage), pinned to
/// shard 0. Every cross-LP interaction — wire flights, control messages,
/// RPCs — flows through here with latency >= `floor()`, the lookahead-matrix
/// floor, so the conservative horizons of ShardedEngine stay valid and no
/// LP ever reaches into another LP's state directly.
///
/// ## Determinism: the per-LP inbox discipline
///
/// Cross-shard merge order at equal timestamps is (t, src_shard, seq),
/// which is not shard-count-invariant. The bus therefore never hands a
/// message straight to model code: arrivals are appended to the destination
/// LP's inbox, and the first same-t arrival schedules a flush at t that
/// sorts the batch by (origin LP, per-origin sequence) — a key that depends
/// only on the model, not on the shard layout. Because every message
/// carries latency >= floor() > 0, all arrivals for (lp, t) are scheduled
/// strictly before t executes, so exactly one flush batch forms per (lp, t)
/// at any shard count and the delivery order is canonical.
///
/// In single-engine mode (direct-construction tests) the same inbox path
/// runs on one engine, so serial and sharded runs are order-identical.
class LpBus {
 public:
  /// Sharded mode: rank LPs in contiguous blocks across se.shards().
  LpBus(ShardedEngine& se, int nranks, Time floor)
      : se_(&se), nranks_(nranks), floor_(floor) {
    assert(floor_ > 0 && "LpBus floor must be positive");
    init();
  }

  /// Single-engine mode: every LP lives on `eng` (direct-construction
  /// tests and serial tools).
  LpBus(Engine& eng, int nranks, Time floor)
      : single_(&eng), nranks_(nranks), floor_(floor) {
    assert(floor_ > 0 && "LpBus floor must be positive");
    init();
  }

  LpBus(const LpBus&) = delete;
  LpBus& operator=(const LpBus&) = delete;

  int nranks() const noexcept { return nranks_; }
  /// The service LP: connection manager, storage, checkpoint coordinator.
  int svc_lp() const noexcept { return nranks_; }
  /// Minimum cross-LP message latency (the lookahead-matrix floor).
  Time floor() const noexcept { return floor_; }

  int shards() const noexcept { return se_ ? se_->shards() : 1; }

  int shard_of(int lp) const {
    if (!se_) return 0;
    return lp >= nranks_ ? 0 : lp_owner_shard(lp, nranks_, se_->shards());
  }

  /// Lowest rank LP owned by shard `s` (the inverse of lp_owner_shard for
  /// contiguous blocks). Used to place per-shard mirror state — e.g. the
  /// deferral gate's shard views — on a canonical LP of that shard.
  int first_lp_of_shard(int s) const {
    const int S = shards();
    return static_cast<int>(
        (static_cast<std::int64_t>(s) * nranks_ + S - 1) / S);
  }

  Engine& engine_of(int lp) {
    return single_ ? *single_ : se_->shard(shard_of(lp));
  }

  /// Next canonical sequence number for messages originated by `origin`.
  /// Must be called on origin's shard; assignment order equals origin's
  /// execution order, which is shard-count-invariant.
  std::uint64_t next_oseq(int origin) { return ++oseq_[origin].v; }

  /// Appends to dst's inbox. Must run on dst's shard at the delivery time;
  /// this is the zero-allocation entry the fabric's pooled flight path uses.
  void inbox_push(int dst_lp, int origin, std::uint64_t oseq, InlineFn fn) {
    Inbox& ib = inbox_[dst_lp];
    ib.batch.push_back(Entry{origin, oseq, std::move(fn)});
    if (!ib.flush_scheduled) {
      ib.flush_scheduled = true;
      Engine& eng = engine_of(dst_lp);
      eng.schedule_at(eng.now(), [this, dst_lp] { flush(dst_lp); });
    }
  }

  /// Raw cross-shard dispatch at absolute time t, bypassing the inbox (no
  /// origin sequencing). Only for callers that do their own canonical
  /// ordering at the destination — the fabric's pooled flight path, which
  /// pushes into the inbox itself on arrival. `t` must respect the floor.
  void post_raw(int src_lp, int dst_lp, Time t, InlineFn fn) {
    const int ss = shard_of(src_lp);
    const int ds = shard_of(dst_lp);
    if (!se_ || ss == ds) {
      engine_of(dst_lp).schedule_at(t, std::move(fn));
    } else {
      se_->post(ss, ds, t, std::move(fn));
    }
  }

  /// Delivers `fn` into dst's inbox at absolute time t, clamped up to
  /// src-now + floor(). Call from code running on src's shard.
  void send_at(int src_lp, int dst_lp, Time t, InlineFn fn) {
    Engine& src_eng = engine_of(src_lp);
    const Time t_eff = std::max(t, src_eng.now() + floor_);
    const std::uint64_t oseq = next_oseq(src_lp);
    post_raw(src_lp, dst_lp, t_eff,
             [this, dst_lp, src_lp, oseq, fn = std::move(fn)]() mutable {
               inbox_push(dst_lp, src_lp, oseq, std::move(fn));
             });
  }

  /// Delivers `fn` one floor hop from now (the common control-plane case).
  void send(int src_lp, int dst_lp, InlineFn fn) {
    send_at(src_lp, dst_lp, engine_of(src_lp).now() + floor_,
            std::move(fn));
  }

  /// RPC: runs the Task produced by `work()` on dst's engine, then resumes
  /// the caller one floor hop after it completes. Must be awaited from a
  /// coroutine running on src's shard; the request pays a floor hop too.
  /// `work` is invoked on dst's shard, so it may touch dst-owned state.
  template <typename F>
  Task<void> call(int src_lp, int dst_lp, F work) {
    RpcWait w(engine_of(src_lp));
    send(src_lp, dst_lp, [this, src_lp, dst_lp, &w, work = std::move(work)]() mutable {
      engine_of(dst_lp).spawn(
          run_remote(this, src_lp, dst_lp, &w, std::move(work)));
    });
    while (!w.done) co_await w.cv.wait();
  }

  /// Drops every queued inbox entry (teardown of an aborted run): entry
  /// destructors run, releasing pooled resources they hold.
  void clear() {
    for (Inbox& ib : inbox_) {
      ib.batch.clear();
      ib.scratch.clear();
      ib.flush_scheduled = false;
    }
  }

 private:
  struct Entry {
    int origin;
    std::uint64_t oseq;
    InlineFn fn;
  };
  struct Inbox {
    std::vector<Entry> batch;
    std::vector<Entry> scratch;  // recycled flush buffer (keeps capacity)
    bool flush_scheduled = false;
  };
  struct RpcWait {
    explicit RpcWait(Engine& eng) : cv(eng) {}
    bool done = false;
    Condition cv;
  };
  struct alignas(64) OriginSeq {
    std::uint64_t v = 0;
  };

  void init() {
    inbox_.resize(static_cast<std::size_t>(nranks_) + 1);
    oseq_.resize(static_cast<std::size_t>(nranks_) + 1);
  }

  template <typename F>
  static Task<void> run_remote(LpBus* bus, int src_lp, int dst_lp,
                               RpcWait* w, F work) {
    co_await work();
    bus->send(dst_lp, src_lp, [w] {
      w->done = true;
      w->cv.notify_all();
    });
  }

  void flush(int lp) {
    Inbox& ib = inbox_[lp];
    ib.scratch.clear();
    ib.scratch.swap(ib.batch);
    ib.flush_scheduled = false;
    std::sort(ib.scratch.begin(), ib.scratch.end(),
              [](const Entry& a, const Entry& b) {
                return a.origin != b.origin ? a.origin < b.origin
                                            : a.oseq < b.oseq;
              });
    for (Entry& e : ib.scratch) e.fn();
    ib.scratch.clear();
  }

  ShardedEngine* se_ = nullptr;
  Engine* single_ = nullptr;
  int nranks_;
  Time floor_;
  std::vector<Inbox> inbox_;
  std::vector<OriginSeq> oseq_;
};

}  // namespace gbc::sim
