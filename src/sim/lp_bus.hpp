#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/condition.hpp"
#include "sim/engine.hpp"
#include "sim/inline_fn.hpp"
#include "sim/shard_engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace gbc::sim {

/// Which shard owns logical process `lp` when `nlps` LPs are split across
/// `shards` contiguous blocks. This is the single ownership rule shared by
/// the scale model and the full protocol stack (DESIGN.md §13): rank r lives
/// on shard r*S/n, and the root service LP (id = nlps) is pinned to shard 0.
constexpr int lp_owner_shard(int lp, int nlps, int shards) {
  return static_cast<int>(static_cast<std::int64_t>(lp) * shards / nlps);
}

/// Message bus between logical processes (LPs) of one simulated cluster.
///
/// LP ids 0..nranks-1 are the MPI ranks; id nranks is the *root service LP*
/// (inter-group checkpoint sequencing, connection manager, shared PFS),
/// pinned to shard 0. Every cross-LP interaction — wire flights, control
/// messages, RPCs — flows through here with latency >= `floor()`, the
/// lookahead-matrix floor, so the conservative horizons of ShardedEngine
/// stay valid and no LP ever reaches into another LP's state directly.
///
/// ## Determinism: the settle-sweep discipline
///
/// Cross-shard merge order at equal timestamps is (t, src_shard, seq),
/// which is not shard-count-invariant. The bus therefore never hands a
/// message straight to model code: every delivery lands in its destination
/// shard's *settle bucket* for the delivery time, and one back-band sweep
/// event per (shard, t) — scheduled after every normal event at t
/// (Engine::schedule_at_back) — sorts the bucket by (dst LP, origin LP,
/// per-origin sequence) and runs it. The key depends only on the model,
/// never on the shard layout, so the delivery order each LP observes is
/// canonical at any shard/thread count.
///
/// Two paths feed a bucket:
///  - *Same-shard fast path*: the sender pushes the entry straight into the
///    bucket at send time — no wrapper event, no cross-shard post. Because
///    every message carries latency >= floor() > 0, the entry is in place
///    strictly before its delivery time executes.
///  - *Cross-shard path*: a wrapper posted through ShardedEngine runs as a
///    normal event at the delivery time and pushes the entry then; the
///    back-band sweep at the same t runs after it by construction.
///
/// Handlers run inside the sweep only touch their own LP's state (the LP
/// discipline), so the interleaving of *different* LPs' handlers at one
/// (shard, t) — the only thing the layout can change — is unobservable.
///
/// In single-engine mode (direct-construction tests and serial tools) every
/// LP shares one engine and every send takes the fast path, so serial and
/// sharded runs deliver in the same canonical order.
class LpBus {
 public:
  /// Sharded mode: rank LPs in contiguous blocks across se.shards().
  LpBus(ShardedEngine& se, int nranks, Time floor)
      : se_(&se), nranks_(nranks), floor_(floor) {
    assert(floor_ > 0 && "LpBus floor must be positive");
    init(se.shards());
  }

  /// Single-engine mode: every LP lives on `eng` (direct-construction
  /// tests and serial tools).
  LpBus(Engine& eng, int nranks, Time floor)
      : single_(&eng), nranks_(nranks), floor_(floor) {
    assert(floor_ > 0 && "LpBus floor must be positive");
    init(1);
  }

  LpBus(const LpBus&) = delete;
  LpBus& operator=(const LpBus&) = delete;

  int nranks() const noexcept { return nranks_; }
  /// The root service LP: connection manager, shared PFS, inter-group
  /// checkpoint sequencing and ledger commit. Group coordinators and
  /// storage servers live on rank LPs (harness/service_map.hpp).
  int svc_lp() const noexcept { return nranks_; }
  /// Minimum cross-LP message latency (the lookahead-matrix floor).
  Time floor() const noexcept { return floor_; }

  int shards() const noexcept { return se_ ? se_->shards() : 1; }

  int shard_of(int lp) const {
    if (!se_) return 0;
    return lp >= nranks_ ? 0 : lp_owner_shard(lp, nranks_, se_->shards());
  }

  /// Lowest rank LP owned by shard `s` (the inverse of lp_owner_shard for
  /// contiguous blocks). Used to place per-shard mirror state — e.g. the
  /// deferral gate's shard views — on a canonical LP of that shard.
  int first_lp_of_shard(int s) const {
    const int S = shards();
    return static_cast<int>(
        (static_cast<std::int64_t>(s) * nranks_ + S - 1) / S);
  }

  Engine& engine_of(int lp) {
    return single_ ? *single_ : se_->shard(shard_of(lp));
  }

  /// Next canonical sequence number for messages originated by `origin`.
  /// Must be called on origin's shard; assignment order equals origin's
  /// execution order, which is shard-count-invariant.
  std::uint64_t next_oseq(int origin) { return ++oseq_[origin].v; }

  /// Appends a delivery for `dst_lp` to its shard's settle bucket at
  /// absolute time t. Callable from any LP on dst's shard (the same-shard
  /// fast path calls it at send time with a future t; cross-shard wrappers
  /// call it at the delivery time via inbox_push). The first entry for a
  /// (shard, t) schedules that shard's back-band sweep.
  void inbox_push_at(int dst_lp, int origin, std::uint64_t oseq, Time t,
                     InlineFn fn) {
    bucket_at(shard_of(dst_lp), t)
        .entries.push_back(Entry{dst_lp, origin, oseq, std::move(fn)});
  }

  /// Appends to dst's settle bucket at the current time. Must run on dst's
  /// shard at the delivery time; this is the zero-allocation entry the
  /// fabric's cross-shard flight wrappers use.
  void inbox_push(int dst_lp, int origin, std::uint64_t oseq, InlineFn fn) {
    inbox_push_at(dst_lp, origin, oseq, engine_of(dst_lp).now(),
                  std::move(fn));
  }

  /// Runs `fn` in lp's shard's settle sweep at time t, *before* the sorted
  /// deliveries, in push order. No origin sequencing: only for callbacks
  /// that mutate lp's own state and need no canonical order against other
  /// LPs' callbacks — the fabric's sender-side completion counters, whose
  /// push order is the pushing LP's own execution order at any layout.
  /// Must be called from lp's shard with t in its future.
  void settle_at(int lp, Time t, InlineFn fn) {
    bucket_at(shard_of(lp), t).pre.push_back(Pre{lp, std::move(fn)});
  }

  /// Raw cross-shard dispatch at absolute time t, bypassing the settle
  /// buckets (no origin sequencing). Only for callers that do their own
  /// canonical ordering at the destination — the fabric's pooled flight
  /// path, whose wrapper pushes into the bucket itself on arrival. `t` must
  /// respect the floor.
  void post_raw(int src_lp, int dst_lp, Time t, InlineFn fn) {
    const int ss = shard_of(src_lp);
    const int ds = shard_of(dst_lp);
    if (!se_ || ss == ds) {
      engine_of(dst_lp).schedule_at(t, std::move(fn));
    } else {
      se_->post(ss, ds, t, std::move(fn));
    }
  }

  /// Delivers `fn` into dst's settle bucket at absolute time t, clamped up
  /// to src-now + floor(). Call from code running on src's shard.
  void send_at(int src_lp, int dst_lp, Time t, InlineFn fn) {
    Engine& src_eng = engine_of(src_lp);
    const Time t_eff = std::max(t, src_eng.now() + floor_);
    const std::uint64_t oseq = next_oseq(src_lp);
    const int ss = shard_of(src_lp);
    const int ds = shard_of(dst_lp);
    if (!se_ || ss == ds) {
      inbox_push_at(dst_lp, src_lp, oseq, t_eff, std::move(fn));
    } else {
      se_->post(ss, ds, t_eff,
                [this, dst_lp, src_lp, oseq, fn = std::move(fn)]() mutable {
                  inbox_push(dst_lp, src_lp, oseq, std::move(fn));
                });
    }
  }

  /// Delivers `fn` one floor hop from now (the common control-plane case).
  void send(int src_lp, int dst_lp, InlineFn fn) {
    send_at(src_lp, dst_lp, engine_of(src_lp).now() + floor_,
            std::move(fn));
  }

  /// RPC: runs the Task produced by `work()` on dst's engine, then resumes
  /// the caller one floor hop after it completes. Must be awaited from a
  /// coroutine running on src's shard; the request pays a floor hop too.
  /// `work` is invoked on dst's shard, so it may touch dst-owned state.
  template <typename F>
  Task<void> call(int src_lp, int dst_lp, F work) {
    RpcWait w(engine_of(src_lp));
    send(src_lp, dst_lp, [this, src_lp, dst_lp, &w, work = std::move(work)]() mutable {
      engine_of(dst_lp).spawn(
          run_remote(this, src_lp, dst_lp, &w, std::move(work)));
    });
    while (!w.done) co_await w.cv.wait();
  }

  /// Messages delivered to `lp` so far (settle-sweep executions). Owner
  /// shard writes, anyone may read at a quiescent point — the per-LP event
  /// split bench/shard_scaling --fullstack reports.
  std::uint64_t delivered(int lp) const {
    return delivered_[static_cast<std::size_t>(lp)];
  }
  std::uint64_t delivered_total() const {
    std::uint64_t sum = 0;
    for (std::uint64_t d : delivered_) sum += d;
    return sum;
  }

  /// Drops every queued settle bucket (teardown of an aborted run): entry
  /// destructors run, releasing pooled resources they hold. The engines'
  /// pending sweep events are dropped by abort_all alongside.
  void clear() {
    for (ShardState& st : shards_) {
      st.buckets.clear();
      st.pool.clear();
    }
  }

 private:
  struct Entry {
    int dst;
    int origin;
    std::uint64_t oseq;
    InlineFn fn;
  };
  struct Pre {
    int lp;
    InlineFn fn;
  };
  /// All deliveries for one (shard, t); exists iff a sweep is scheduled.
  struct Bucket {
    Time t = 0;
    std::vector<Pre> pre;       // unsequenced own-LP callbacks, push order
    std::vector<Entry> entries; // sorted by (dst, origin, oseq) at sweep
  };
  struct alignas(64) ShardState {
    std::vector<Bucket> buckets;  // ascending t
    std::vector<Bucket> pool;     // recycled buckets (vectors keep capacity)
  };
  struct RpcWait {
    explicit RpcWait(Engine& eng) : cv(eng) {}
    bool done = false;
    Condition cv;
  };
  struct alignas(64) OriginSeq {
    std::uint64_t v = 0;
  };

  void init(int nshards) {
    oseq_.resize(static_cast<std::size_t>(nranks_) + 1);
    delivered_.assign(static_cast<std::size_t>(nranks_) + 1, 0);
    shards_.resize(static_cast<std::size_t>(nshards));
  }

  Engine& engine_of_shard(int s) {
    return single_ ? *single_ : se_->shard(s);
  }

  /// The settle bucket for (shard, t), creating it — and scheduling the
  /// shard's back-band sweep at t — on first touch. Buckets are kept
  /// sorted by t; inserts land at/near the back in practice (arrivals are
  /// roughly time-ordered), and the count of live buckets is the number of
  /// distinct pending delivery times on the shard, which stays small.
  Bucket& bucket_at(int shard, Time t) {
    ShardState& st = shards_[shard];
    auto it = std::lower_bound(
        st.buckets.begin(), st.buckets.end(), t,
        [](const Bucket& b, Time when) { return b.t < when; });
    if (it == st.buckets.end() || it->t != t) {
      Bucket b;
      if (!st.pool.empty()) {
        b = std::move(st.pool.back());
        st.pool.pop_back();
      }
      b.t = t;
      it = st.buckets.insert(it, std::move(b));
      engine_of_shard(shard).schedule_at_back(
          t, [this, shard] { sweep(shard); });
    }
    return *it;
  }

  template <typename F>
  static Task<void> run_remote(LpBus* bus, int src_lp, int dst_lp,
                               RpcWait* w, F work) {
    co_await work();
    bus->send(dst_lp, src_lp, [w] {
      w->done = true;
      w->cv.notify_all();
    });
  }

  /// The per-(shard, t) settle sweep: runs the pre-lane in push order, then
  /// sorts the deliveries by the canonical (dst LP, origin, oseq) key and
  /// runs them. Runs back-band, after every normal event at t, so all
  /// same-instant arrivals are already in.
  void sweep(int shard) {
    ShardState& st = shards_[shard];
    Engine& eng = engine_of_shard(shard);
    if (st.buckets.empty() || st.buckets.front().t != eng.now()) {
      return;  // bus cleared under a still-queued sweep (aborted run)
    }
    Bucket batch = std::move(st.buckets.front());
    st.buckets.erase(st.buckets.begin());
    for (Pre& p : batch.pre) {
      ++delivered_[static_cast<std::size_t>(p.lp)];
      p.fn();
    }
    if (batch.entries.size() > 1) {
      std::sort(batch.entries.begin(), batch.entries.end(),
                [](const Entry& a, const Entry& b) {
                  if (a.dst != b.dst) return a.dst < b.dst;
                  return a.origin != b.origin ? a.origin < b.origin
                                              : a.oseq < b.oseq;
                });
    }
    for (Entry& e : batch.entries) {
      ++delivered_[static_cast<std::size_t>(e.dst)];
      e.fn();
    }
    batch.pre.clear();
    batch.entries.clear();
    st.pool.push_back(std::move(batch));
  }

  ShardedEngine* se_ = nullptr;
  Engine* single_ = nullptr;
  int nranks_;
  Time floor_;
  std::vector<ShardState> shards_;
  std::vector<OriginSeq> oseq_;
  std::vector<std::uint64_t> delivered_;
};

}  // namespace gbc::sim
