#pragma once

#include <cmath>
#include <cstdint>

// Deterministic RNG for workload generation. We avoid <random> engines and
// distributions because their outputs are not specified identically across
// standard libraries; reproducibility of the benchmark tables matters more
// than statistical sophistication here.
namespace gbc::sim {

/// SplitMix64: tiny, fast, passes BigCrush when used as a stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n) {
    return n == 0 ? 0 : next_u64() % n;
  }

  /// Exponential with the given mean.
  double exponential(double mean) {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Normal via Box-Muller (one value per call; simple and deterministic).
  double normal(double mean, double stddev) {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * 3.14159265358979323846 * u2);
    return mean + stddev * z;
  }

  /// Lognormal parameterized by the mean/cv of the *resulting* distribution.
  double lognormal_mean_cv(double mean, double cv) {
    double sigma2 = std::log(1.0 + cv * cv);
    double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(normal(mu, std::sqrt(sigma2)));
  }

  /// Derives an independent stream (e.g., per rank) from this seed.
  Rng fork(std::uint64_t stream) const {
    return Rng(state_ ^ (0xA0761D6478BD642FULL * (stream + 1)));
  }

 private:
  std::uint64_t state_;
};

}  // namespace gbc::sim
