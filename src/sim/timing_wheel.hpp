#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace gbc::sim {

/// One scheduled engine event: fire the callable stored in slot `slot` at
/// simulated time `t`. `seq` is a monotonic schedule counter that breaks
/// timestamp ties in schedule order — the strict FIFO guarantee that keeps
/// runs byte-deterministic.
struct WheelEvent {
  Time t;
  std::uint64_t seq;
  std::uint32_t slot;
};

/// Hierarchical timing wheel (calendar queue) — the engine's event scheduler.
///
/// Replaces the binary heap: push and pop are O(1) amortized instead of
/// O(log n), and both touch a couple of cache lines instead of sifting
/// through the heap array.
///
/// Structure, fastest first:
///
/// 1. A one-event *register* holds the earliest pending event whenever that
///    is provably safe (the wheel is otherwise empty when it parks, or the
///    new event displaces a smaller-(t,seq) register). A simulation whose
///    queue oscillates around one event — e.g. a coroutine sleeping in a
///    loop — schedules and pops through the register alone and never touches
///    the wheel.
/// 2. kLevels wheels of kSlots slots each. A level-k slot spans 2^(6k) ns,
///    so level 0 resolves single nanoseconds and the wheels jointly cover
///    one kHorizon = 2^48 ns epoch (~78 simulated hours). An event is placed
///    by the highest bit in which its timestamp differs from the wheel clock
///    `cur_` (level = bit/6): it then lands strictly after the clock's slot
///    on that level, which keeps cascading finite and means pending slots
///    are always scanned forward (no circular wrap-around). Per-level
///    occupancy bitmaps plus a level summary mask make the scan a few
///    bit-operations.
/// 3. Events in a different 2^48-aligned epoch than the clock wait in a
///    (t, seq)-ordered min-heap overflow bucket; they migrate into the
///    wheels when the clock enters their epoch. While the wheels are
///    non-empty the clock cannot change epoch, so migration is only checked
///    on the wheels-empty path — never per pop.
///
/// Determinism: events pop in strictly ascending (t, seq) order. A leaf
/// bucket can mix directly-inserted events with events cascaded down from
/// coarser wheels (whose seq may be lower), so each leaf bucket is sorted by
/// seq once when its drain starts; events appended *during* the drain
/// (schedule_now from a callback) run in append position. For normal
/// schedules that equals seq order (a fresh schedule always draws a larger
/// seq than everything already sorted); an appended event can carry a
/// smaller raw key than a back-band (Engine::kBackBand) event already in
/// the bucket, but append-position execution is exactly the contract there:
/// work spawned at t after the settle sweep runs after it.
///
/// Clock invariant: cur_ only moves forward, never past the earliest pending
/// event and never past the pop limit (run_until must be able to schedule at
/// times just after its boundary).
class TimingWheel {
 public:
  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;  // 64
  static constexpr int kLevels = 8;
  static constexpr Time kHorizon = Time{1} << (kSlotBits * kLevels);  // 2^48

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  /// The wheel clock (<= earliest pending event time).
  Time current() const noexcept { return cur_; }

  void push(const WheelEvent& ev) {
    ++size_;
    if (min_valid_ && ev.t < min_cache_) min_cache_ = ev.t;
    if (has_reg_) {
      // The register stays the (t, seq) minimum. The full key comparison
      // matters for reserved-seq injections (ShardedEngine::post_reserved):
      // unlike ordinary schedules, those can arrive with a *lower* seq than
      // an equal-t event already parked here.
      if (ev.t < reg_.t || (ev.t == reg_.t && ev.seq < reg_.seq)) {
        wheel_push(reg_);
        reg_ = ev;
      } else {
        wheel_push(ev);
      }
      return;
    }
    if (wheel_empty()) {
      reg_ = ev;
      has_reg_ = true;
      return;
    }
    // The wheel may hold an earlier (t, seq) than this event, so it cannot
    // claim the register.
    wheel_push(ev);
  }

  /// Pops the earliest pending event into `out` if its timestamp is <=
  /// limit; returns false otherwise (leaving the event queued).
  bool pop(Time limit, WheelEvent& out) {
    if (!has_reg_) {
      // Refill from the wheel. Delivery is immediate (same call), so the
      // register never holds a wheel-sourced event across pops — pushes
      // between pops can rely on "register events were never in a drain".
      if (!wheel_pop(limit, reg_)) return false;
    } else if (reg_.t > limit) {
      return false;
    }
    out = reg_;
    has_reg_ = false;
    --size_;
    // The popped event *was* the minimum; the runner-up is unknown until the
    // next peek rescans.
    min_valid_ = false;
    return true;
  }

  /// Timestamp of the earliest pending event without removing it — and
  /// without advancing the wheel clock, which matters: the caller (a shard
  /// coordinator placing the next conservative window) will still schedule
  /// events earlier than this timestamp, so cur_ must stay put.
  ///
  /// O(1) in the steady state: the result is memoized, pushes fold into the
  /// cached minimum, and only the first peek after a pop pays the slot scan.
  /// A shard that sits idle across many barriers answers every
  /// `next_event_time()` from the cache (or the register).
  bool peek_time(Time& t) const {
    if (has_reg_) {
      t = reg_.t;
      return true;
    }
    if (size_ == 0) return false;
    if (min_valid_) {
      t = min_cache_;
      return true;
    }
    // Slots within a level cover disjoint ascending time ranges, so the
    // level's minimum lives in its first occupied slot; leaf slots pin the
    // timestamp exactly, coarse buckets are scanned for their true minimum.
    Time best = kMaxTime;
    std::uint32_t m = levels_;
    while (m != 0) {
      const int k = std::countr_zero(m);
      m &= m - 1;
      const int from = index_at(k, cur_);
      const std::uint64_t ge = from != 0 ? occupied_[k] >> from : occupied_[k];
      assert(ge != 0 && "pending slot behind the wheel clock");
      const int slot = from + std::countr_zero(ge);
      if (k == 0) {
        best = std::min(best, slot_start(0, slot));
      } else {
        best = std::min(best, buckets_[k][slot].min_time());
      }
    }
    if (!overflow_.empty()) best = std::min(best, overflow_.top().t);
    min_cache_ = best;
    min_valid_ = true;
    t = best;
    return true;
  }

  /// Drops every pending event (abort_all). The clock is left where it is.
  void clear() noexcept {
    for (int k = 0; k < kLevels; ++k) {
      std::uint64_t occ = occupied_[k];
      while (occ != 0) {
        buckets_[k][std::countr_zero(occ)].clear();
        occ &= occ - 1;
      }
      occupied_[k] = 0;
    }
    levels_ = 0;
    while (!overflow_.empty()) overflow_.pop();
    drain_slot_ = -1;
    drain_pos_ = 0;
    has_reg_ = false;
    size_ = 0;
    min_valid_ = false;
  }

 private:
  static constexpr Time kMaxTime = std::numeric_limits<Time>::max();

  /// Bucket of same-slot events: two inline entries, heap array beyond.
  /// clear() keeps capacity, so steady-state runs stop allocating; the
  /// whole wheel's buckets are freed wholesale with the engine.
  class Bucket {
   public:
    Bucket() = default;
    Bucket(const Bucket&) = delete;
    Bucket& operator=(const Bucket&) = delete;
    ~Bucket() { delete[] heap_; }

    std::uint32_t size() const noexcept { return n_; }
    /// Smallest timestamp in the bucket (kMaxTime when empty) — folded in on
    /// push so peek_time never scans a coarse bucket's contents.
    Time min_time() const noexcept { return min_t_; }
    WheelEvent* data() noexcept { return heap_ != nullptr ? heap_ : inline_; }
    const WheelEvent& operator[](std::uint32_t i) const noexcept {
      return (heap_ != nullptr ? heap_ : inline_)[i];
    }
    void push_back(const WheelEvent& ev) {
      if (n_ == cap_) grow();
      if (ev.t < min_t_) min_t_ = ev.t;
      data()[n_++] = ev;
    }
    void clear() noexcept {
      n_ = 0;
      min_t_ = kMaxTime;
    }

   private:
    void grow() {
      const std::uint32_t ncap = cap_ * 4;
      WheelEvent* nh = new WheelEvent[ncap];
      std::copy(data(), data() + n_, nh);
      delete[] heap_;
      heap_ = nh;
      cap_ = ncap;
    }

    std::uint32_t n_ = 0;
    std::uint32_t cap_ = 2;
    Time min_t_ = kMaxTime;
    WheelEvent* heap_ = nullptr;
    WheelEvent inline_[2];
  };

  bool wheel_empty() const noexcept {
    return levels_ == 0 && drain_slot_ < 0 && overflow_.empty();
  }

  void wheel_push(const WheelEvent& ev) {
    assert(ev.t >= cur_ && "scheduling into the wheel's past");
    if (!same_epoch(ev.t)) {
      overflow_.push(ev);
      return;
    }
    insert(ev);
  }

  bool wheel_pop(Time limit, WheelEvent& out) {
    for (;;) {
      // Fast path: continue draining the current leaf bucket.
      if (drain_slot_ >= 0) {
        Bucket& b = buckets_[0][drain_slot_];
        if (drain_pos_ < b.size()) {
          if (cur_ > limit) return false;
          out = b[drain_pos_++];
          return true;
        }
        b.clear();
        drain_pos_ = 0;
        occupied_[0] &= ~(std::uint64_t{1} << drain_slot_);
        if (occupied_[0] == 0) levels_ &= ~1u;
        drain_slot_ = -1;
      }
      if (levels_ == 0) {
        // Wheels empty: enter the overflow's epoch and migrate it in. This
        // is the only place migration can be needed — while the wheels hold
        // events the clock stays inside its epoch.
        if (overflow_.empty()) return false;
        if (overflow_.top().t > limit) return false;
        cur_ = overflow_.top().t;
        do {
          insert(overflow_.top());
          overflow_.pop();
        } while (!overflow_.empty() && same_epoch(overflow_.top().t));
      }

      // Find the earliest candidate: the first occupied slot at or after
      // the clock's slot on each level (placement guarantees no pending
      // slot is behind it). For level 0 the slot start IS the event time;
      // for coarser levels it is a lower bound, so a coarse candidate at or
      // before the leaf candidate must be cascaded before dispatching (its
      // events at equal t could carry lower seq).
      Time leaf_t = kMaxTime;
      int leaf_slot = -1;
      Time coarse_t = kMaxTime;
      int coarse_level = -1;
      int coarse_slot = -1;
      std::uint32_t m = levels_;
      do {
        const int k = std::countr_zero(m);
        m &= m - 1;
        const int from = index_at(k, cur_);
        const std::uint64_t ge =
            from != 0 ? occupied_[k] >> from : occupied_[k];
        assert(ge != 0 && "pending slot behind the wheel clock");
        const int slot = from + std::countr_zero(ge);
        const Time t = slot_start(k, slot);
        if (k == 0) {
          leaf_t = t;
          leaf_slot = slot;
        } else if (t < coarse_t) {
          coarse_t = t;
          coarse_level = k;
          coarse_slot = slot;
        }
      } while (m != 0);

      if (coarse_t <= leaf_t) {
        const Time lb = coarse_t > cur_ ? coarse_t : cur_;
        if (lb > limit) return false;
        cur_ = lb;
        cascade(coarse_level, coarse_slot);
        continue;
      }
      if (leaf_t > limit) return false;
      cur_ = leaf_t;
      begin_drain(leaf_slot);
    }
  }

  static int index_at(int level, Time t) noexcept {
    return static_cast<int>(
        (static_cast<std::uint64_t>(t) >> (kSlotBits * level)) & (kSlots - 1));
  }

  /// True when t shares the clock's kHorizon-aligned epoch, i.e. fits the
  /// wheels; anything else waits in the overflow heap.
  bool same_epoch(Time t) const noexcept {
    return ((static_cast<std::uint64_t>(t) ^ static_cast<std::uint64_t>(cur_)) &
            ~(static_cast<std::uint64_t>(kHorizon) - 1)) == 0;
  }

  /// Absolute start time of `slot` on `level`. Valid because every pending
  /// slot shares the clock's bits above its level's span.
  Time slot_start(int level, int slot) const noexcept {
    const int span_bits = kSlotBits * (level + 1);
    const Time base =
        static_cast<Time>((static_cast<std::uint64_t>(cur_) >> span_bits)
                          << span_bits);
    return base + (Time(slot) << (kSlotBits * level));
  }

  void insert(const WheelEvent& ev) {
    // Place by the highest differing bit vs the clock: t and cur_ then
    // disagree inside that level's 6-bit slot field, so the event's slot is
    // strictly after the clock's slot at that level (t >= cur_), never on
    // it. A plain delta-based level can violate that when a carry crosses a
    // level boundary (e.g. cur_=63, t=4096: delta 4033 maps to level 1 slot
    // 0 == the clock's slot) and corrupt the clock's monotonicity.
    const std::uint64_t diff =
        static_cast<std::uint64_t>(ev.t) ^ static_cast<std::uint64_t>(cur_);
    int level = 0;
    if ((diff >> kSlotBits) != 0) {
      level = (63 - std::countl_zero(diff)) / kSlotBits;
    }
    const int idx = index_at(level, ev.t);
    buckets_[level][idx].push_back(ev);
    occupied_[level] |= std::uint64_t{1} << idx;
    levels_ |= 1u << level;
  }

  /// Re-distributes a coarse bucket's events into finer wheels. Never
  /// re-targets the same bucket: cascading happens when the clock has entered
  /// the slot, so every event in it now agrees with cur_ on all bits >= 6k
  /// and re-inserts at a level below k.
  void cascade(int k, int idx) {
    Bucket& b = buckets_[k][idx];
    occupied_[k] &= ~(std::uint64_t{1} << idx);
    if (occupied_[k] == 0) levels_ &= ~(1u << k);
    const std::uint32_t n = b.size();
    for (std::uint32_t i = 0; i < n; ++i) insert(b[i]);
    b.clear();
  }

  void begin_drain(int slot) {
    Bucket& b = buckets_[0][slot];
    // Cascaded events may interleave out of seq order with direct inserts;
    // one sort at drain start restores FIFO. Almost always size 1–2.
    if (b.size() > 1) {
      std::sort(b.data(), b.data() + b.size(),
                [](const WheelEvent& a, const WheelEvent& z) {
                  return a.seq < z.seq;
                });
    }
    drain_slot_ = slot;
    drain_pos_ = 0;
  }

  struct OverflowLater {
    bool operator()(const WheelEvent& a, const WheelEvent& b) const noexcept {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  Bucket buckets_[kLevels][kSlots];
  std::uint64_t occupied_[kLevels] = {};
  std::uint32_t levels_ = 0;  // summary mask: bit k = level k has events
  std::priority_queue<WheelEvent, std::vector<WheelEvent>, OverflowLater>
      overflow_;
  WheelEvent reg_{};  // the pending (t, seq) minimum, when has_reg_
  bool has_reg_ = false;
  // Memoized earliest pending timestamp (peek_time): pushes fold in via
  // min(), pops invalidate. Mutable because peek_time is logically const.
  mutable Time min_cache_ = 0;
  mutable bool min_valid_ = false;
  Time cur_ = 0;
  std::size_t size_ = 0;
  int drain_slot_ = -1;
  std::uint32_t drain_pos_ = 0;
};

}  // namespace gbc::sim
