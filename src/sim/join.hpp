#pragma once

#include "sim/condition.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace gbc::sim {

namespace detail {
inline Task<void> join_wrapper(Task<void> body, int* pending, Condition* cv) {
  co_await std::move(body);
  if (--*pending == 0) cv->notify_all();
}
}  // namespace detail

/// Fork/join for coroutines: launch() spawns concurrent subtasks, join()
/// suspends until all of them finish. The JoinSet must outlive its tasks
/// (declare it in the frame that calls join()).
class JoinSet {
 public:
  explicit JoinSet(Engine& eng) : eng_(eng), cv_(eng) {}
  JoinSet(const JoinSet&) = delete;
  JoinSet& operator=(const JoinSet&) = delete;

  void launch(Task<void> body) {
    ++pending_;
    eng_.spawn(detail::join_wrapper(std::move(body), &pending_, &cv_));
  }

  Task<void> join() {
    while (pending_ > 0) co_await cv_.wait();
  }

  int pending() const noexcept { return pending_; }

 private:
  Engine& eng_;
  Condition cv_;
  int pending_ = 0;
};

}  // namespace gbc::sim
