#include "sim/trace_chrome.hpp"

#include <cstdio>
#include <set>
#include <string_view>

namespace gbc::sim {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_ts(std::string& out, Time t) {
  char buf[32];
  // ns -> us; three decimals keep full nanosecond precision.
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(t / 1000),
                static_cast<long long>(t % 1000));
  out += buf;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

// Row layout: -1 -> 0 ("global"), rank r -> r + 1, and shard coordinator
// actors (-2 - shard, emitted by sim::ShardedEngine) -> a high band so
// shard rows sort below the rank rows instead of colliding with "global".
int chrome_tid(int actor) {
  if (actor >= 0) return actor + 1;
  if (actor == -1) return 0;
  return 1000000 + (-actor - 2);
}

void append_event(std::string& out, bool& first, const Trace::Event& ev,
                  char ph, std::string_view name) {
  if (!first) out += ",\n";
  first = false;
  out += R"({"name":")";
  append_escaped(out, name);
  out += R"(","cat":")";
  append_escaped(out, ev.category);
  out += R"(","ph":")";
  out += ph;
  out += R"(","ts":)";
  append_ts(out, ev.t);
  out += R"(,"pid":0,"tid":)";
  out += std::to_string(chrome_tid(ev.actor));
  if (ph == 'i') out += R"(,"s":"t")";
  if (!ev.detail.empty()) {
    out += R"(,"args":{"detail":")";
    append_escaped(out, ev.detail);
    out += R"("})";
  }
  out += '}';
}

}  // namespace

std::string trace_to_chrome_json(const Trace& trace) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  std::set<int> actors;
  for (const auto& ev : trace.events()) {
    actors.insert(ev.actor);
    if (ev.category == "freeze") {
      append_event(out, first, ev, 'B', "frozen");
    } else if (ev.category == "resume") {
      append_event(out, first, ev, 'E', "frozen");
    } else if (starts_with(ev.detail, "begin")) {
      append_event(out, first, ev, 'B', ev.category);
    } else if (starts_with(ev.detail, "end") || ev.detail == "complete") {
      append_event(out, first, ev, 'E', ev.category);
    } else {
      append_event(out, first, ev, 'i', ev.category);
    }
  }
  // Name the thread rows so the viewer shows ranks, not bare tids.
  for (int actor : actors) {
    if (!first) out += ",\n";
    first = false;
    out += R"({"name":"thread_name","ph":"M","pid":0,"tid":)";
    out += std::to_string(chrome_tid(actor));
    out += R"(,"args":{"name":")";
    if (actor >= 0) {
      out += "rank " + std::to_string(actor);
    } else if (actor == -1) {
      out += "global";
    } else {
      out += "shard " + std::to_string(-actor - 2);
    }
    out += R"("}})";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace gbc::sim
