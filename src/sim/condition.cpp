#include "sim/condition.hpp"

namespace gbc::sim {

Task<bool> Condition::wait_for(Time timeout) {
  // Race a timer against the condition; whichever settles the shared state
  // first wins, the loser finds `settled` already true and does nothing.
  auto state = eng_->make_suspend_state();
  bool notified = false;

  struct RaceAwaiter {
    Condition& cv;
    Time timeout;
    std::shared_ptr<SuspendState>& state;
    bool& notified;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      state->handle = h;
      cv.eng_->register_suspension(state);
      cv.waiters_.push_back(state);
      auto s = state;
      bool* notified_flag = &notified;
      // The notify path goes through Engine::wake which sets settled before
      // the resume fires, so mark `notified` from a same-time probe: if the
      // timer finds the state already settled, the notify won.
      cv.eng_->schedule_after(timeout, [s, notified_flag] {
        if (s->settled) return;  // notify already scheduled the resume
        s->settled = true;
        *notified_flag = false;
        if (s->alive) s->handle.resume();
      });
      *notified_flag = true;  // default: if notify fires the wake, true holds
    }
    void await_resume() const {
      state->alive = false;
      if (cv.eng_->aborted()) throw SimAborted{};
    }
  };

  co_await RaceAwaiter{*this, timeout, state, notified};
  co_return notified;
}

}  // namespace gbc::sim
