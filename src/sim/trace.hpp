#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace gbc::sim {

/// Lightweight structured trace used for debugging and for the schedule
/// Gantt rendering in bench/fig2_schedule_trace. Disabled by default; when
/// disabled, add() is a cheap branch.
class Trace {
 public:
  struct Event {
    Time t;
    int actor;  // rank id, or -1 for global actors
    std::string category;
    std::string detail;
  };

  void enable(bool on) { enabled_ = on; }
  bool enabled() const noexcept { return enabled_; }

  /// Safe from any shard thread: the partitioned storage tier traces on the
  /// nodes' home engines. The lock is only ever taken when tracing is on
  /// (tools and tests), so the disabled hot path stays a lone branch.
  void add(Time t, int actor, std::string category, std::string detail) {
    if (!enabled_) return;
    std::lock_guard<std::mutex> lk(mu_);
    events_.push_back(Event{t, actor, std::move(category), std::move(detail)});
  }

  /// Only read the buffer at quiescence (after the run / between cycles).
  const std::vector<Event>& events() const noexcept { return events_; }
  void clear() { events_.clear(); }

 private:
  bool enabled_ = false;
  std::mutex mu_;
  std::vector<Event> events_;
};

}  // namespace gbc::sim
