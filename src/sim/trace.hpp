#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"

namespace gbc::sim {

/// Lightweight structured trace used for debugging and for the schedule
/// Gantt rendering in bench/fig2_schedule_trace. Disabled by default; when
/// disabled, add() is a cheap branch.
class Trace {
 public:
  struct Event {
    Time t;
    int actor;  // rank id, or -1 for global actors
    std::string category;
    std::string detail;
  };

  void enable(bool on) { enabled_ = on; }
  bool enabled() const noexcept { return enabled_; }

  void add(Time t, int actor, std::string category, std::string detail) {
    if (!enabled_) return;
    events_.push_back(Event{t, actor, std::move(category), std::move(detail)});
  }

  const std::vector<Event>& events() const noexcept { return events_; }
  void clear() { events_.clear(); }

 private:
  bool enabled_ = false;
  std::vector<Event> events_;
};

}  // namespace gbc::sim
