#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "sim/inline_fn.hpp"
#include "sim/time.hpp"

namespace gbc::sim {

/// One cross-shard event: run `fn` on the destination shard at simulated
/// time `t`. `seq` is a per-source-shard monotonic counter, so
/// (t, src_shard, seq) totally orders every cross-shard message — the key
/// the coordinator merges mailboxes by, which is what keeps sharded runs
/// byte-deterministic regardless of thread timing.
///
/// When `reserved` is set, `seq` is instead a sequence number reserved on
/// the *destination* engine at send time (Engine::reserve_seq): injection
/// re-uses it verbatim, so the destination executes the exact (t, seq)
/// stream a serial run would have — the mechanism the full protocol stack
/// uses to stay byte-identical under sharding (see ShardedEngine::
/// post_reserved).
struct CrossEvent {
  Time t = 0;
  std::uint64_t seq = 0;
  InlineFn fn;
  bool reserved = false;
};

/// Unbounded lock-free single-producer / single-consumer queue.
///
/// Storage is a linked list of fixed-size segments. The producer writes an
/// entry, then publishes it with a release store of the segment's filled
/// count; the consumer acquire-loads that count, drains up to it, and frees
/// segments it has exhausted. Only those two counters (and the segment link)
/// are shared, so the fast path is one atomic store per push and one atomic
/// load per pop — no CAS, no locks.
///
/// Roles are fixed: in the sharded engine each (src, dst) shard pair owns
/// one queue, the source shard's worker thread is the only producer and the
/// coordinator (at a window barrier, i.e. with the producer parked) is the
/// only consumer. The queue itself is nonetheless a correct concurrent SPSC
/// — producer and consumer may run simultaneously — which is what the TSan
/// stress test exercises.
template <typename T, std::size_t kSegmentSize = 512>
class SpscQueue {
 public:
  SpscQueue() {
    Segment* seg = new Segment;
    head_ = seg;
    tail_ = seg;
  }
  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;
  ~SpscQueue() {
    Segment* s = head_;
    while (s != nullptr) {
      Segment* next = s->next.load(std::memory_order_relaxed);
      delete s;
      s = next;
    }
  }

  /// Producer side. Single-threaded with respect to itself.
  void push(T v) {
    if (tail_pos_ == kSegmentSize) {
      Segment* seg = new Segment;
      // Publish the new segment only after it is fully constructed.
      tail_->next.store(seg, std::memory_order_release);
      tail_ = seg;
      tail_pos_ = 0;
    }
    tail_->items[tail_pos_] = std::move(v);
    // The release store makes the item (and, transitively, everything the
    // producer wrote before pushing) visible to the consumer's acquire load.
    tail_->filled.store(tail_pos_ + 1, std::memory_order_release);
    ++tail_pos_;
  }

  /// Consumer side. Returns false when no published entry is available.
  bool pop(T& out) {
    for (;;) {
      const std::size_t filled = head_->filled.load(std::memory_order_acquire);
      if (head_pos_ < filled) {
        out = std::move(head_->items[head_pos_++]);
        return true;
      }
      if (head_pos_ < kSegmentSize) return false;  // producer still here
      Segment* next = head_->next.load(std::memory_order_acquire);
      if (next == nullptr) return false;  // successor not published yet
      delete head_;
      head_ = next;
      head_pos_ = 0;
    }
  }

 private:
  struct Segment {
    T items[kSegmentSize];
    std::atomic<std::size_t> filled{0};
    std::atomic<Segment*> next{nullptr};
  };

  // Producer-owned end.
  alignas(64) Segment* tail_;
  std::size_t tail_pos_ = 0;
  // Consumer-owned end.
  alignas(64) Segment* head_;
  std::size_t head_pos_ = 0;
};

}  // namespace gbc::sim
