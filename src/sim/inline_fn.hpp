#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace gbc::sim {

/// Move-only callable with a large inline buffer. The event loop schedules
/// millions of tiny lambdas (a captured shared_ptr or two, a packet); with
/// std::function every one of them heap-allocates, because libstdc++ only
/// stores trivially-copyable targets locally. InlineFn keeps any callable of
/// up to kCapacity bytes (and nothrow-move-constructible, so moves stay
/// noexcept) in the object itself and falls back to the heap beyond that.
class InlineFn {
 public:
  /// Sized for the fattest hot-path lambda: fabric delivery captures
  /// this + Packet (with its shared_ptr body) + a flag, ~64 bytes.
  static constexpr std::size_t kCapacity = 64;

  InlineFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                     // std::function at every schedule_* call site
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      Fn* p = new Fn(std::forward<F>(f));
      std::memcpy(buf_, &p, sizeof(p));
      ops_ = &heap_ops<Fn>;
    }
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(void* buf);
    /// Move-constructs dst's storage from src's and destroys src's target.
    void (*relocate)(void* src_buf, void* dst_buf) noexcept;
    void (*destroy)(void* buf) noexcept;
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* buf) { (*std::launder(reinterpret_cast<Fn*>(buf)))(); },
      [](void* src, void* dst) noexcept {
        Fn* f = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*f));
        f->~Fn();
      },
      [](void* buf) noexcept {
        std::launder(reinterpret_cast<Fn*>(buf))->~Fn();
      }};

  // The heap pointer is stored in and loaded from buf_ via memcpy so the
  // access stays strict-aliasing clean regardless of the buffer's type.
  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* buf) {
        Fn* p;
        std::memcpy(&p, buf, sizeof(p));
        (*p)();
      },
      [](void* src, void* dst) noexcept { std::memcpy(dst, src, sizeof(Fn*)); },
      [](void* buf) noexcept {
        Fn* p;
        std::memcpy(&p, buf, sizeof(p));
        delete p;
      }};

  void move_from(InlineFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_) ops_->relocate(other.buf_, buf_);
    other.ops_ = nullptr;
  }
  void reset() noexcept {
    if (ops_) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kCapacity];
};

}  // namespace gbc::sim
