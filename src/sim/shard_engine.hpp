#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/mailbox.hpp"
#include "sim/trace.hpp"

namespace gbc::sim {

/// Per-shard execution counters, the basis for the events-per-window load
/// balance statistics the scale benchmarks report.
struct ShardStats {
  std::uint64_t events = 0;            ///< events this shard dispatched
  std::uint64_t busy_windows = 0;      ///< rounds in which it dispatched any
  std::uint64_t max_window_events = 0; ///< largest single-round burst
  std::uint64_t cross_sent = 0;        ///< cross-shard messages it produced
};

/// Conservative-lookahead parallel discrete-event engine.
///
/// One simulation is partitioned into S shards, each owning a full serial
/// Engine — its own timing wheel, slot arena and memory pools — and the
/// model's state is partitioned with them (every logical process belongs to
/// exactly one shard). Cross-shard sends flow through lock-free SPSC
/// mailboxes instead of the destination wheel; mailboxes are drained at
/// synchronization barriers and merged in deterministic (t, src_shard, seq)
/// order, so serial and S-shard runs are event-for-event identical at any
/// thread count.
///
/// ## Horizons: the per-shard-pair lookahead matrix
///
/// How far a shard may run between barriers is governed by a per-shard-pair
/// lookahead matrix L: L[src][dst] is the minimum latency of any message the
/// model will ever post from src to dst (kNoLink if that pair never
/// exchanges messages). From it the engine precomputes `cdist`, the
/// all-pairs shortest path over L *including cycle lengths on the diagonal*
/// (cdist[s][s] = the shortest cycle through s). At every round each
/// shard's horizon is the earliest-input-time bound
///
///     end[s] = min over all shards x of ( next(x) + cdist[x][s] )
///
/// where next(x) is x's earliest pending event: no message can arrive at s
/// before end[s] that is not already in s's wheel. The diagonal term is
/// what makes the naive "min over other shards' next + direct latency"
/// bound safe: an event on s itself can round-trip through an idle shard
/// and re-enter s's near future, so s is bounded by its own shortest cycle.
/// A shard with next(s) >= end[s] simply sits the round out — its wheel is
/// untouched, so its next-event query stays O(1) (memoized in the wheel).
///
/// ## Windows vs rounds: empty-window fusion
///
/// A *round* is one horizon computation plus the execution it permits. A
/// *window* only ends when a round actually produced cross-shard traffic:
/// the mailboxes are merged, destination sequence numbers are assigned in
/// (t, src, seq) order, and `windows()` increments. Rounds in which no
/// mailbox traffic is in flight fuse into the current window — execution
/// advances straight to the next globally pending work with no merge, no
/// sort and no staging heap. This is what removes the per-lookahead window
/// tax the lockstep design paid: a workload whose traffic is mostly
/// shard-local pays one merge per actual exchange, not one per lookahead
/// quantum of simulated time.
///
/// Mailbox drains are batched: each barrier collects every in-flight cross
/// event into one vector and sorts it once — and a round with <= 1 cross
/// event skips the merge-sort entirely.
///
/// Determinism does NOT depend on the thread count or the shard->thread
/// assignment; it does depend on the shard *count* only through the model's
/// LP discipline (a disciplined model is shard-count-invariant too; see
/// harness/scale_model.cpp for the inbox discipline, and post_reserved for
/// the stronger serial-replay contract the full protocol stack uses).
class ShardedEngine {
 public:
  /// Matrix entry for "these two shards never exchange messages".
  static constexpr Time kNoLink = kMaxSimTime;

  struct Options {
    int shards = 1;
    /// Uniform conservative horizon, used for every shard pair when
    /// `lookahead_matrix` is empty; must be > 0 when shards > 1.
    Time lookahead = 0;
    /// Optional per-shard-pair minimum message latency, row-major
    /// shards x shards: entry [src * shards + dst] is the minimum latency
    /// of any cross-shard post src -> dst, or kNoLink when that pair never
    /// exchanges messages. Diagonal entries are ignored. Every finite entry
    /// must be > 0. The tighter (sparser, larger) this matrix, the wider
    /// the conservative horizons.
    std::vector<Time> lookahead_matrix;
    /// Worker threads to run rounds on, clamped to [1, shards]. 1 runs all
    /// shards inline on the calling thread (identical results, no threads).
    /// Callers should size this via harness::ThreadBudget so sweeps and
    /// sharded runs never oversubscribe the machine together.
    int threads = 1;
    /// When set (and enabled), the coordinator emits one
    /// `shard/<id>/window` span per busy shard per round.
    Trace* trace = nullptr;
  };

  explicit ShardedEngine(const Options& opts);
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;
  ~ShardedEngine();

  int shards() const noexcept { return static_cast<int>(shards_.size()); }
  int threads() const noexcept { return threads_; }
  /// Minimum finite cross-shard lookahead (the scalar the lockstep design
  /// used everywhere).
  Time lookahead() const noexcept { return lookahead_; }
  Engine& shard(int s);

  /// Cross-shard schedule: from model code running on shard `src`, schedule
  /// fn on shard `dst` at absolute simulated time t. Requires
  /// t >= shard(src).now() + L[src][dst] (the conservative contract;
  /// asserted) — use a same-shard schedule_at for anything closer, which
  /// post() degrades to when src == dst.
  void post(int src, int dst, Time t, InlineFn fn);

  /// Like post(), but the delivery executes on `dst` under `seq`, a
  /// sequence number previously obtained from shard(dst).reserve_seq() —
  /// reserved at send time, on the sending shard, which must therefore hold
  /// the destination engine's seq counter exclusively (the full-stack
  /// pattern: the protocol stack lives on one shard and relays packet
  /// flights through transit shards, so the stack shard's event stream is
  /// bit-identical to a serial run).
  void post_reserved(int src, int dst, Time t, std::uint64_t seq,
                     InlineFn fn);

  /// Runs rounds until every shard's queue and every mailbox drain.
  /// Rethrows the first simulated-process error (lowest shard index).
  void run();
  /// Runs every event with timestamp <= t, then advances every shard's
  /// clock to t (the sharded analogue of Engine::run_until).
  void run_until(Time t);
  /// Aborts every shard's engine (waking suspended coroutines with
  /// SimAborted) and discards all in-flight mailbox traffic.
  void abort_all();

  const ShardStats& stats(int s) const;
  std::uint64_t total_events() const;
  /// Synchronization windows: barriers at which cross-shard traffic was
  /// actually merged. Rounds without traffic fuse and are not counted.
  std::uint64_t windows() const noexcept { return windows_; }
  /// Horizon-advance rounds, including fused (traffic-free) ones.
  std::uint64_t rounds() const noexcept { return rounds_; }
  /// Total cross-shard messages merged so far.
  std::uint64_t cross_events() const;
  /// Load balance across shards: max per-shard events / mean per-shard
  /// events. 1.0 = perfectly balanced.
  double window_balance() const;

 private:
  struct Shard;

  void run_shard_window(int s);
  void worker_loop(int worker);
  void run_rounds(Time cap);
  /// Drains every mailbox into batch_, merges, injects. Returns the number
  /// of cross events injected.
  std::size_t drain_and_inject();
  void stop_pool();
  void emit_trace_spans();

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Time> matrix_;  // row-major L[src * S + dst]
  std::vector<Time> cdist_;   // APSP closure of matrix_, cycles on diagonal
  std::vector<Time> next_;    // per-round scratch: earliest pending event
  std::vector<Time> ends_;    // per-round horizon; 0 = sits this round out
  std::vector<std::uint64_t> drained_;  // cross posts already merged, per src
  std::vector<char> injected_;  // per-round scratch: merge touched this shard
  Time lookahead_ = 0;
  int threads_ = 1;
  Trace* trace_ = nullptr;
  std::uint64_t windows_ = 0;
  std::uint64_t rounds_ = 0;

  // Barrier-drain scratch: all in-flight cross events, merged by
  // (t, src, seq) with a single sort (skipped when <= 1 event).
  struct Staged {
    Time t;
    std::uint32_t src;
    std::uint64_t seq;
    std::uint32_t dst;
    bool reserved;
    InlineFn fn;
  };
  std::vector<Staged> batch_;

  // Window barrier state for the per-run worker pool (see shard_engine.cpp).
  struct Pool;
  std::unique_ptr<Pool> pool_;
};

}  // namespace gbc::sim
