#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/mailbox.hpp"
#include "sim/trace.hpp"

namespace gbc::sim {

/// Per-shard execution counters, the basis for the events-per-window load
/// balance statistics the scale benchmarks report.
struct ShardStats {
  std::uint64_t events = 0;            ///< events this shard dispatched
  std::uint64_t busy_windows = 0;      ///< windows in which it dispatched any
  std::uint64_t max_window_events = 0; ///< largest single-window burst
  std::uint64_t cross_sent = 0;        ///< cross-shard messages it produced
};

/// Conservative-lookahead parallel discrete-event engine.
///
/// One simulation is partitioned into S shards, each owning a full serial
/// Engine — its own timing wheel, slot arena and memory pools — and the
/// model's state is partitioned with them (every logical process belongs to
/// exactly one shard). Shards advance in lockstep windows [T, T + L) where
/// T is the globally earliest pending event and L is the lookahead: the
/// minimum simulated latency of any cross-shard interaction (for a fabric,
/// its minimum wire latency; see net::Fabric::min_latency()). Inside a
/// window each shard runs free on its own thread; an event that targets
/// another shard goes through a lock-free SPSC mailbox instead of the
/// destination wheel, because its delivery time t >= send + L necessarily
/// falls beyond the window.
///
/// At the window barrier the coordinator drains every mailbox and merges
/// the messages in (t, src_shard, seq) order — a total order independent of
/// thread scheduling — assigning destination-engine sequence numbers in
/// that merged order. Within a shard the serial engine's strict (t, seq)
/// FIFO already holds, so the whole run is reproducible event-for-event:
/// the same model run on 1 thread, S inline shards or S threads produces
/// identical results, provided the model keeps per-LP state private to its
/// shard and ties at equal timestamps commutative or explicitly ordered
/// (see harness/scale_model.cpp for the inbox discipline that delivers the
/// latter).
///
/// Determinism does NOT depend on the thread count or the shard->thread
/// assignment; it does depend on the shard *count* only through the model's
/// LP discipline (a disciplined model is shard-count-invariant too).
class ShardedEngine {
 public:
  struct Options {
    int shards = 1;
    /// Conservative horizon; must be > 0 when shards > 1. Every post() must
    /// deliver at least this far after the sending shard's current time.
    Time lookahead = 0;
    /// Worker threads to run windows on, clamped to [1, shards]. 1 runs all
    /// shards inline on the calling thread (identical results, no threads).
    /// Callers should size this via harness::ThreadBudget so sweeps and
    /// sharded runs never oversubscribe the machine together.
    int threads = 1;
    /// When set (and enabled), the coordinator emits one
    /// `shard/<id>/window` span per busy shard per window.
    Trace* trace = nullptr;
  };

  explicit ShardedEngine(const Options& opts);
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;
  ~ShardedEngine();

  int shards() const noexcept { return static_cast<int>(shards_.size()); }
  int threads() const noexcept { return threads_; }
  Time lookahead() const noexcept { return lookahead_; }
  Engine& shard(int s);

  /// Cross-shard schedule: from model code running on shard `src`, schedule
  /// fn on shard `dst` at absolute simulated time t. Requires
  /// t >= shard(src).now() + lookahead (the conservative contract; asserted)
  /// — use a same-shard schedule_at for anything closer, which post()
  /// degrades to when src == dst.
  void post(int src, int dst, Time t, InlineFn fn);

  /// Runs windows until every shard's queue and every mailbox drain.
  /// Rethrows the first simulated-process error (lowest shard index).
  void run();

  const ShardStats& stats(int s) const;
  std::uint64_t total_events() const;
  std::uint64_t windows() const noexcept { return windows_; }
  /// Load balance across shards: max per-shard events / mean per-shard
  /// events. 1.0 = perfectly balanced.
  double window_balance() const;

 private:
  struct Shard;

  void run_shard_window(int s, Time end);
  void worker_loop(int worker);
  Time earliest_pending();
  void inject_staged(Time before);
  void drain_mailboxes();
  void run_windows_parallel(Time end);

  std::vector<std::unique_ptr<Shard>> shards_;
  Time lookahead_ = 0;
  int threads_ = 1;
  Trace* trace_ = nullptr;
  std::uint64_t windows_ = 0;

  // Cross-shard messages drained from mailboxes but not yet due: a binary
  // min-heap ordered by the deterministic merge key (t, src, seq).
  struct Staged {
    Time t;
    std::uint32_t src;
    std::uint64_t seq;
    std::uint32_t dst;
    InlineFn fn;
  };
  std::vector<Staged> staged_;

  // Window barrier state for the per-run worker pool (see shard_engine.cpp).
  struct Pool;
  std::unique_ptr<Pool> pool_;
};

}  // namespace gbc::sim
