#include "sim/shard_engine.hpp"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

namespace gbc::sim {

/// Shard-private state. Padded so two worker threads never share a line
/// through the hot seq counter / mailbox tails.
struct alignas(64) ShardedEngine::Shard {
  Engine eng;
  /// One SPSC mailbox per destination shard; this shard's worker is the
  /// only producer, the coordinator (at a barrier) the only consumer.
  std::vector<std::unique_ptr<SpscQueue<CrossEvent>>> out;
  std::uint64_t next_seq = 0;
  ShardStats stats;
  std::uint64_t events_before_window = 0;
  std::exception_ptr error;
};

namespace {

/// Addition that saturates at kMaxSimTime instead of overflowing — matrix
/// entries use kMaxSimTime (kNoLink) for "no path".
Time sat_add(Time a, Time b) noexcept {
  if (a >= kMaxSimTime - b) return kMaxSimTime;
  return a + b;
}

}  // namespace

/// Generation-counted round barrier: the coordinator publishes per-shard
/// horizons (ends_), workers run their statically-assigned runnable shards
/// (shard s belongs to worker s % threads), and the coordinator waits for
/// all of them before merging mailboxes. Static assignment keeps each
/// Engine thread-affine for the whole run, which also fixes the SPSC
/// producer role per mailbox.
struct ShardedEngine::Pool {
  std::mutex m;
  std::condition_variable start_cv;
  std::condition_variable done_cv;
  std::uint64_t generation = 0;
  int done = 0;
  bool stop = false;
  std::vector<std::thread> workers;
};

ShardedEngine::ShardedEngine(const Options& opts) : trace_(opts.trace) {
  if (opts.shards < 1) {
    throw std::invalid_argument("ShardedEngine: shards must be >= 1");
  }
  const int S = opts.shards;
  if (!opts.lookahead_matrix.empty()) {
    if (opts.lookahead_matrix.size() !=
        static_cast<std::size_t>(S) * static_cast<std::size_t>(S)) {
      throw std::invalid_argument(
          "ShardedEngine: lookahead matrix must be shards x shards");
    }
    matrix_ = opts.lookahead_matrix;
    for (int i = 0; i < S; ++i) {
      for (int j = 0; j < S; ++j) {
        Time& e = matrix_[static_cast<std::size_t>(i) * S + j];
        if (i == j) {
          e = kNoLink;  // self-sends use the local wheel, never a mailbox
        } else if (e <= 0) {
          throw std::invalid_argument(
              "ShardedEngine: lookahead matrix entries must be positive "
              "(use kNoLink for silent pairs)");
        }
      }
    }
  } else {
    if (S > 1 && opts.lookahead <= 0) {
      throw std::invalid_argument(
          "ShardedEngine: a positive lookahead is required for > 1 shard");
    }
    matrix_.assign(static_cast<std::size_t>(S) * S, kNoLink);
    for (int i = 0; i < S; ++i) {
      for (int j = 0; j < S; ++j) {
        if (i != j) matrix_[static_cast<std::size_t>(i) * S + j] =
            opts.lookahead;
      }
    }
  }

  lookahead_ = kNoLink;
  for (int i = 0; i < S; ++i) {
    for (int j = 0; j < S; ++j) {
      if (i != j) {
        lookahead_ =
            std::min(lookahead_, matrix_[static_cast<std::size_t>(i) * S + j]);
      }
    }
  }
  if (lookahead_ == kNoLink) lookahead_ = 0;  // fully disconnected partition

  // Conservative-horizon closure: cdist_[x][s] = length of the shortest
  // message chain x -> ... -> s, and on the diagonal the shortest cycle
  // through s. Floyd-Warshall with the diagonal seeded to kNoLink (not 0)
  // computes exactly that, because a node is never a useful intermediate of
  // its own shortest cycle.
  cdist_ = matrix_;
  for (int k = 0; k < S; ++k) {
    for (int i = 0; i < S; ++i) {
      const Time ik = cdist_[static_cast<std::size_t>(i) * S + k];
      if (ik == kNoLink) continue;
      for (int j = 0; j < S; ++j) {
        const Time kj = cdist_[static_cast<std::size_t>(k) * S + j];
        Time& ij = cdist_[static_cast<std::size_t>(i) * S + j];
        ij = std::min(ij, sat_add(ik, kj));
      }
    }
  }

  threads_ = std::clamp(opts.threads, 1, S);
  next_.resize(S);
  ends_.assign(S, 0);
  drained_.assign(S, 0);
  injected_.assign(S, false);
  shards_.reserve(S);
  for (int s = 0; s < S; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->out.reserve(S);
    for (int d = 0; d < S; ++d) {
      sh->out.push_back(std::make_unique<SpscQueue<CrossEvent>>());
    }
    shards_.push_back(std::move(sh));
  }
}

ShardedEngine::~ShardedEngine() { stop_pool(); }

Engine& ShardedEngine::shard(int s) { return shards_[s]->eng; }

const ShardStats& ShardedEngine::stats(int s) const {
  return shards_[s]->stats;
}

void ShardedEngine::post(int src, int dst, Time t, InlineFn fn) {
  assert(src >= 0 && src < shards() && dst >= 0 && dst < shards());
  if (src == dst) {
    shards_[src]->eng.schedule_at(t, std::move(fn));
    return;
  }
  Shard& from = *shards_[src];
  assert(matrix_[static_cast<std::size_t>(src) * shards() + dst] != kNoLink &&
         "cross-shard post on a pair the lookahead matrix declares silent");
  assert(t >= from.eng.now() +
                 matrix_[static_cast<std::size_t>(src) * shards() + dst] &&
         "cross-shard post inside the conservative horizon");
  ++from.stats.cross_sent;
  from.out[dst]->push(CrossEvent{t, from.next_seq++, std::move(fn), false});
}

void ShardedEngine::post_reserved(int src, int dst, Time t, std::uint64_t seq,
                                  InlineFn fn) {
  assert(src >= 0 && src < shards() && dst >= 0 && dst < shards());
  if (src == dst) {
    shards_[src]->eng.schedule_at_reserved(t, seq, std::move(fn));
    return;
  }
  Shard& from = *shards_[src];
  assert(matrix_[static_cast<std::size_t>(src) * shards() + dst] != kNoLink &&
         "cross-shard post on a pair the lookahead matrix declares silent");
  assert(t >= from.eng.now() +
                 matrix_[static_cast<std::size_t>(src) * shards() + dst] &&
         "cross-shard post inside the conservative horizon");
  ++from.stats.cross_sent;
  from.out[dst]->push(CrossEvent{t, seq, std::move(fn), true});
}

std::size_t ShardedEngine::drain_and_inject() {
  batch_.clear();
  const int n = shards();
  CrossEvent ev;
  for (int src = 0; src < n; ++src) {
    Shard& sh = *shards_[src];
    // Most rounds of a loosely-coupled model post nothing: the running count
    // of cross posts (read coherently here — producers are quiescent at the
    // round barrier) gates the O(shards) mailbox scan per source.
    if (sh.stats.cross_sent == drained_[src]) continue;
    drained_[src] = sh.stats.cross_sent;
    for (int dst = 0; dst < n; ++dst) {
      if (dst == src) continue;
      auto& mb = *sh.out[dst];
      while (mb.pop(ev)) {
        batch_.push_back(Staged{ev.t, static_cast<std::uint32_t>(src), ev.seq,
                                static_cast<std::uint32_t>(dst), ev.reserved,
                                std::move(ev.fn)});
      }
    }
  }
  // Deterministic merge order (t, src, seq); a round with <= 1 cross event
  // skips the sort. The drain order above is itself deterministic, so equal
  // keys (possible only between a reserved and a fresh-seq event, which
  // live in different sequence spaces) keep a stable, thread-independent
  // order too.
  if (batch_.size() > 1) {
    std::sort(batch_.begin(), batch_.end(),
              [](const Staged& a, const Staged& b) {
                if (a.t != b.t) return a.t < b.t;
                if (a.src != b.src) return a.src < b.src;
                return a.seq < b.seq;
              });
  }
  // Inject straight into the destination wheels: every delivery time is at
  // or past the destination's horizon, so nothing lands in a shard's past
  // and no staging heap is needed.
  for (Staged& st : batch_) {
    Engine& de = shards_[st.dst]->eng;
    injected_[st.dst] = true;
    if (st.reserved) {
      de.schedule_at_reserved(st.t, st.seq, std::move(st.fn));
    } else {
      de.schedule_at(st.t, std::move(st.fn));
    }
  }
  return batch_.size();
}

void ShardedEngine::run_shard_window(int s) {
  Shard& sh = *shards_[s];
  sh.events_before_window = sh.eng.events_processed();
  const Time end = ends_[s];
  try {
    // Horizon [next, end): Time is integral, so "strictly below end" is
    // run_until(end - 1). The engine parks with now() == end - 1, safely
    // behind any merge-injected arrival (all of which are >= end).
    sh.eng.run_until(end == kMaxSimTime ? kMaxSimTime : end - 1);
  } catch (...) {
    sh.error = std::current_exception();
  }
  const std::uint64_t n = sh.eng.events_processed() - sh.events_before_window;
  if (n > 0) {
    sh.stats.events += n;
    ++sh.stats.busy_windows;
    sh.stats.max_window_events = std::max(sh.stats.max_window_events, n);
  }
}

void ShardedEngine::worker_loop(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(pool_->m);
      pool_->start_cv.wait(
          lk, [&] { return pool_->stop || pool_->generation != seen; });
      if (pool_->stop) return;
      seen = pool_->generation;
    }
    for (int s = worker; s < shards(); s += threads_) {
      if (ends_[s] != 0) run_shard_window(s);
    }
    {
      std::lock_guard<std::mutex> lk(pool_->m);
      if (++pool_->done == threads_ - 1) pool_->done_cv.notify_one();
    }
  }
}

void ShardedEngine::stop_pool() {
  if (!pool_) return;
  {
    std::lock_guard<std::mutex> lk(pool_->m);
    pool_->stop = true;
  }
  pool_->start_cv.notify_all();
  for (auto& w : pool_->workers) w.join();
  pool_.reset();
}

void ShardedEngine::emit_trace_spans() {
  if (trace_ == nullptr || !trace_->enabled()) return;
  for (int s = 0; s < shards(); ++s) {
    if (ends_[s] == 0) continue;
    const Shard& sh = *shards_[s];
    const std::uint64_t n =
        sh.eng.events_processed() - sh.events_before_window;
    if (n == 0) continue;
    const std::string cat = "shard/" + std::to_string(s) + "/window";
    const Time t0 = next_[s];
    const Time end = ends_[s] == kMaxSimTime ? sh.eng.now() : ends_[s];
    trace_->add(t0, -2 - s, cat, "begin");
    trace_->add(end, -2 - s, cat, "end events=" + std::to_string(n));
  }
}

void ShardedEngine::run_rounds(Time cap) {
  const int S = shards();
  bool first = true;
  for (;;) {
    // Merge first: anything posted during the previous round (or before the
    // run started) lands in the wheels before horizons are computed, so
    // in-flight traffic is fully accounted by next-event times.
    std::fill(injected_.begin(), injected_.end(), false);
    if (drain_and_inject() > 0) ++windows_;

    // A shard's earliest pending time only moves when the shard ran last
    // round (ends_ still holds that round's horizons) or the merge just
    // injected into it; everyone else answers from the previous round's
    // next_. The first round recomputes everything — the caller may have
    // scheduled into any shard since the last run.
    Time tmin = kMaxSimTime;
    for (int s = 0; s < S; ++s) {
      if (first || ends_[s] != 0 || injected_[s]) {
        next_[s] = shards_[s]->eng.next_event_time();
      }
      tmin = std::min(tmin, next_[s]);
    }
    first = false;
    if (tmin > cap || tmin == kMaxSimTime) {
      std::fill(ends_.begin(), ends_.end(), Time{0});
      return;
    }

    // Earliest-input-time horizons. The shard holding the globally earliest
    // event always has end > next (every cdist is positive), so each round
    // makes progress.
    int runnable = 0;
    int sole = -1;
    for (int s = 0; s < S; ++s) {
      Time e = kMaxSimTime;
      for (int x = 0; x < S; ++x) {
        e = std::min(e,
                     sat_add(next_[x], cdist_[static_cast<std::size_t>(x) * S +
                                              s]));
      }
      if (cap != kMaxSimTime && e > cap) e = cap + 1;
      if (e > next_[s]) {
        ends_[s] = e;
        ++runnable;
        sole = s;
      } else {
        ends_[s] = 0;
      }
    }
    assert(runnable > 0 && "conservative horizon made no progress");
    ++rounds_;

    if (runnable == 1) {
      // Most rounds of a loosely-coupled model run exactly one shard; skip
      // the pool barrier entirely.
      run_shard_window(sole);
    } else if (threads_ == 1) {
      for (int s = 0; s < S; ++s) {
        if (ends_[s] != 0) run_shard_window(s);
      }
    } else {
      if (!pool_) {
        pool_ = std::make_unique<Pool>();
        pool_->workers.reserve(threads_ - 1);
        for (int w = 1; w < threads_; ++w) {
          pool_->workers.emplace_back([this, w] { worker_loop(w); });
        }
      }
      {
        std::lock_guard<std::mutex> lk(pool_->m);
        pool_->done = 0;
        ++pool_->generation;
      }
      pool_->start_cv.notify_all();
      // The coordinator doubles as worker 0.
      for (int s = 0; s < S; s += threads_) {
        if (ends_[s] != 0) run_shard_window(s);
      }
      std::unique_lock<std::mutex> lk(pool_->m);
      pool_->done_cv.wait(lk, [&] { return pool_->done == threads_ - 1; });
    }

    emit_trace_spans();

    for (auto& sh : shards_) {
      if (sh->error) {
        auto e = sh->error;
        sh->error = nullptr;
        stop_pool();
        std::rethrow_exception(e);
      }
    }
  }
}

void ShardedEngine::run() {
  if (shards() == 1) {
    ++windows_;
    ++rounds_;
    Shard& sh = *shards_[0];
    sh.events_before_window = sh.eng.events_processed();
    sh.eng.run();
    const std::uint64_t n =
        sh.eng.events_processed() - sh.events_before_window;
    sh.stats.events += n;
    if (n > 0) {
      sh.stats.busy_windows = 1;
      sh.stats.max_window_events = std::max(sh.stats.max_window_events, n);
    }
    return;
  }
  run_rounds(kMaxSimTime);
  stop_pool();
}

void ShardedEngine::run_until(Time t) {
  if (shards() == 1) {
    ++windows_;
    ++rounds_;
    Shard& sh = *shards_[0];
    sh.events_before_window = sh.eng.events_processed();
    sh.eng.run_until(t);
    const std::uint64_t n =
        sh.eng.events_processed() - sh.events_before_window;
    sh.stats.events += n;
    if (n > 0) {
      sh.stats.busy_windows = 1;
      sh.stats.max_window_events = std::max(sh.stats.max_window_events, n);
    }
    return;
  }
  run_rounds(t);
  stop_pool();
  // Nothing at or before t is pending anywhere; advance every clock to t so
  // callers observe the serial run_until postcondition on each shard.
  for (auto& sh : shards_) sh->eng.run_until(t);
}

void ShardedEngine::abort_all() {
  stop_pool();
  for (auto& sh : shards_) sh->eng.abort_all();
  // Drop in-flight cross traffic: its targets are gone. InlineFn destructors
  // release any captured resources.
  CrossEvent ev;
  for (int s = 0; s < shards(); ++s) {
    for (auto& mb : shards_[s]->out) {
      while (mb->pop(ev)) {
      }
    }
    drained_[s] = shards_[s]->stats.cross_sent;
  }
}

std::uint64_t ShardedEngine::total_events() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->stats.events;
  return n;
}

std::uint64_t ShardedEngine::cross_events() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->stats.cross_sent;
  return n;
}

double ShardedEngine::window_balance() const {
  const std::uint64_t total = total_events();
  if (total == 0 || shards_.empty()) return 1.0;
  std::uint64_t mx = 0;
  for (const auto& sh : shards_) mx = std::max(mx, sh->stats.events);
  const double mean = static_cast<double>(total) / shards_.size();
  return static_cast<double>(mx) / mean;
}

}  // namespace gbc::sim
