#include "sim/shard_engine.hpp"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

namespace gbc::sim {

/// Shard-private state. Padded so two worker threads never share a line
/// through the hot seq counter / mailbox tails.
struct alignas(64) ShardedEngine::Shard {
  Engine eng;
  /// One SPSC mailbox per destination shard; this shard's worker is the
  /// only producer, the coordinator (at a barrier) the only consumer.
  std::vector<std::unique_ptr<SpscQueue<CrossEvent>>> out;
  std::uint64_t next_seq = 0;
  ShardStats stats;
  std::uint64_t events_before_window = 0;
  std::exception_ptr error;
};

namespace {

// Merge key: earliest (t, src, seq) first. Used with std::push_heap /
// std::pop_heap, which build a max-heap, hence the inverted comparison.
struct StagedLater {
  template <typename S>
  bool operator()(const S& a, const S& b) const noexcept {
    if (a.t != b.t) return a.t > b.t;
    if (a.src != b.src) return a.src > b.src;
    return a.seq > b.seq;
  }
};

}  // namespace

/// Generation-counted window barrier: the coordinator publishes a window
/// end, workers run their statically-assigned shards (shard s belongs to
/// worker s % threads), and the coordinator waits for all of them before
/// merging mailboxes. Static assignment keeps each Engine thread-affine for
/// the whole run, which also fixes the SPSC producer role per mailbox.
struct ShardedEngine::Pool {
  std::mutex m;
  std::condition_variable start_cv;
  std::condition_variable done_cv;
  std::uint64_t generation = 0;
  Time window_end = 0;
  int done = 0;
  bool stop = false;
  std::vector<std::thread> workers;
};

ShardedEngine::ShardedEngine(const Options& opts)
    : lookahead_(opts.lookahead), trace_(opts.trace) {
  if (opts.shards < 1) {
    throw std::invalid_argument("ShardedEngine: shards must be >= 1");
  }
  if (opts.shards > 1 && opts.lookahead <= 0) {
    throw std::invalid_argument(
        "ShardedEngine: a positive lookahead is required for > 1 shard");
  }
  threads_ = std::clamp(opts.threads, 1, opts.shards);
  shards_.reserve(opts.shards);
  for (int s = 0; s < opts.shards; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->out.reserve(opts.shards);
    for (int d = 0; d < opts.shards; ++d) {
      sh->out.push_back(std::make_unique<SpscQueue<CrossEvent>>());
    }
    shards_.push_back(std::move(sh));
  }
}

ShardedEngine::~ShardedEngine() = default;

Engine& ShardedEngine::shard(int s) { return shards_[s]->eng; }

const ShardStats& ShardedEngine::stats(int s) const {
  return shards_[s]->stats;
}

void ShardedEngine::post(int src, int dst, Time t, InlineFn fn) {
  assert(src >= 0 && src < shards() && dst >= 0 && dst < shards());
  if (src == dst) {
    shards_[src]->eng.schedule_at(t, std::move(fn));
    return;
  }
  Shard& from = *shards_[src];
  assert(t >= from.eng.now() + lookahead_ &&
         "cross-shard post inside the conservative horizon");
  ++from.stats.cross_sent;
  from.out[dst]->push(CrossEvent{t, from.next_seq++, std::move(fn)});
}

Time ShardedEngine::earliest_pending() {
  Time t = kMaxSimTime;
  for (auto& sh : shards_) t = std::min(t, sh->eng.next_event_time());
  if (!staged_.empty()) t = std::min(t, staged_.front().t);
  return t;
}

void ShardedEngine::inject_staged(Time before) {
  while (!staged_.empty() && staged_.front().t < before) {
    std::pop_heap(staged_.begin(), staged_.end(), StagedLater{});
    Staged ev = std::move(staged_.back());
    staged_.pop_back();
    shards_[ev.dst]->eng.schedule_at(ev.t, std::move(ev.fn));
  }
}

void ShardedEngine::drain_mailboxes() {
  const int n = shards();
  CrossEvent ev;
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      if (dst == src) continue;
      auto& mb = *shards_[src]->out[dst];
      while (mb.pop(ev)) {
        staged_.push_back(Staged{ev.t, static_cast<std::uint32_t>(src),
                                 ev.seq, static_cast<std::uint32_t>(dst),
                                 std::move(ev.fn)});
        std::push_heap(staged_.begin(), staged_.end(), StagedLater{});
      }
    }
  }
}

void ShardedEngine::run_shard_window(int s, Time end) {
  Shard& sh = *shards_[s];
  sh.events_before_window = sh.eng.events_processed();
  try {
    // Window [T, end): Time is integral, so "strictly below end" is
    // run_until(end - 1). The engine parks with now() == end - 1, safely
    // behind any merge-injected arrival (all of which are >= end).
    sh.eng.run_until(end == kMaxSimTime ? kMaxSimTime : end - 1);
  } catch (...) {
    sh.error = std::current_exception();
  }
  const std::uint64_t n = sh.eng.events_processed() - sh.events_before_window;
  if (n > 0) {
    sh.stats.events += n;
    ++sh.stats.busy_windows;
    sh.stats.max_window_events = std::max(sh.stats.max_window_events, n);
  }
}

void ShardedEngine::worker_loop(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    Time end;
    {
      std::unique_lock<std::mutex> lk(pool_->m);
      pool_->start_cv.wait(
          lk, [&] { return pool_->stop || pool_->generation != seen; });
      if (pool_->stop) return;
      seen = pool_->generation;
      end = pool_->window_end;
    }
    for (int s = worker; s < shards(); s += threads_) {
      run_shard_window(s, end);
    }
    {
      std::lock_guard<std::mutex> lk(pool_->m);
      if (++pool_->done == threads_ - 1) pool_->done_cv.notify_one();
    }
  }
}

void ShardedEngine::run_windows_parallel(Time end) {
  {
    std::lock_guard<std::mutex> lk(pool_->m);
    pool_->window_end = end;
    pool_->done = 0;
    ++pool_->generation;
  }
  pool_->start_cv.notify_all();
  // The coordinator doubles as worker 0.
  for (int s = 0; s < shards(); s += threads_) run_shard_window(s, end);
  std::unique_lock<std::mutex> lk(pool_->m);
  pool_->done_cv.wait(lk, [&] { return pool_->done == threads_ - 1; });
}

void ShardedEngine::run() {
  if (shards() == 1) {
    ++windows_;
    Shard& sh = *shards_[0];
    sh.events_before_window = sh.eng.events_processed();
    sh.eng.run();
    const std::uint64_t n =
        sh.eng.events_processed() - sh.events_before_window;
    sh.stats.events += n;
    if (n > 0) {
      sh.stats.busy_windows = 1;
      sh.stats.max_window_events = n;
    }
    return;
  }

  if (threads_ > 1 && !pool_) {
    pool_ = std::make_unique<Pool>();
    pool_->workers.reserve(threads_ - 1);
    for (int w = 1; w < threads_; ++w) {
      pool_->workers.emplace_back([this, w] { worker_loop(w); });
    }
  }

  for (;;) {
    const Time t0 = earliest_pending();
    if (t0 == kMaxSimTime) break;
    const Time end =
        t0 >= kMaxSimTime - lookahead_ ? kMaxSimTime : t0 + lookahead_;
    // All merge-time arrivals inside this window are scheduled before any
    // shard runs, so they participate in the window with deterministic
    // destination sequence numbers.
    inject_staged(end);

    if (threads_ > 1) {
      run_windows_parallel(end);
    } else {
      for (int s = 0; s < shards(); ++s) run_shard_window(s, end);
    }
    ++windows_;

    if (trace_ != nullptr && trace_->enabled()) {
      for (int s = 0; s < shards(); ++s) {
        const Shard& sh = *shards_[s];
        const std::uint64_t n =
            sh.eng.events_processed() - sh.events_before_window;
        if (n == 0) continue;
        const std::string cat = "shard/" + std::to_string(s) + "/window";
        trace_->add(t0, -2 - s, cat, "begin");
        trace_->add(end == kMaxSimTime ? t0 : end, -2 - s, cat,
                    "end events=" + std::to_string(n));
      }
    }

    for (auto& sh : shards_) {
      if (sh->error) {
        if (pool_) {
          {
            std::lock_guard<std::mutex> lk(pool_->m);
            pool_->stop = true;
          }
          pool_->start_cv.notify_all();
          for (auto& w : pool_->workers) w.join();
          pool_.reset();
        }
        std::rethrow_exception(sh->error);
      }
    }

    drain_mailboxes();
  }

  if (pool_) {
    {
      std::lock_guard<std::mutex> lk(pool_->m);
      pool_->stop = true;
    }
    pool_->start_cv.notify_all();
    for (auto& w : pool_->workers) w.join();
    pool_.reset();
  }
}

std::uint64_t ShardedEngine::total_events() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->stats.events;
  return n;
}

double ShardedEngine::window_balance() const {
  const std::uint64_t total = total_events();
  if (total == 0 || shards_.empty()) return 1.0;
  std::uint64_t mx = 0;
  for (const auto& sh : shards_) mx = std::max(mx, sh->stats.events);
  const double mean = static_cast<double>(total) / shards_.size();
  return static_cast<double>(mx) / mean;
}

}  // namespace gbc::sim
