#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

// Memory pools for the simulation hot path. Every simulated send, buffered
// message, suspension and coroutine frame used to be a fresh heap allocation;
// at millions of events per sweep point the allocator dominates. The pools
// here trade a little slab bookkeeping for steady-state allocation-free
// operation. All of them are single-threaded by design: a pool belongs to one
// Engine, and the sweep runner confines each Engine to one worker thread
// (DESIGN.md §8), so no atomics are needed.
//
// Under AddressSanitizer the pools degrade to plain new/delete so recycling
// cannot mask use-after-free bugs in the code they serve.
#if defined(__SANITIZE_ADDRESS__)
#define GBC_POOLS_PASSTHROUGH 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GBC_POOLS_PASSTHROUGH 1
#endif
#endif
#ifndef GBC_POOLS_PASSTHROUGH
#define GBC_POOLS_PASSTHROUGH 0
#endif

namespace gbc::sim {

/// Typed slab allocator. Objects are carved out of fixed-size slabs and
/// recycled through an intrusive free list (the link lives in the freed
/// node's own storage), so steady-state acquire/release touches no heap.
template <typename T>
class Pool {
 public:
  explicit Pool(std::size_t nodes_per_slab = 64)
      : per_slab_(nodes_per_slab ? nodes_per_slab : 1) {}
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;
  ~Pool() { assert(outstanding_ == 0 && "Pool destroyed with live objects"); }

  /// Constructs a T in recycled (or freshly-slabbed) storage.
  template <typename... Args>
  T* acquire(Args&&... args) {
#if GBC_POOLS_PASSTHROUGH
    ++outstanding_;
    return new T(std::forward<Args>(args)...);
#else
    Slot* s = free_;
    if (s != nullptr) {
      free_ = s->next;
      ++reused_;
    } else {
      s = grow();
    }
    ++outstanding_;
    return ::new (static_cast<void*>(s->raw)) T(std::forward<Args>(args)...);
#endif
  }

  /// Destroys *p and returns its storage to the free list.
  void release(T* p) noexcept {
    assert(outstanding_ > 0);
    --outstanding_;
#if GBC_POOLS_PASSTHROUGH
    delete p;
#else
    p->~T();
    Slot* s = reinterpret_cast<Slot*>(p);
    s->next = free_;
    free_ = s;
#endif
  }

  std::size_t outstanding() const noexcept { return outstanding_; }
  /// Acquisitions served from the free list (i.e. recycled storage).
  std::uint64_t reused() const noexcept { return reused_; }

 private:
  union Slot {
    Slot* next;
    alignas(alignof(T)) std::byte raw[sizeof(T)];
  };

  Slot* grow() {
    slabs_.push_back(std::make_unique<Slot[]>(per_slab_));
    Slot* base = slabs_.back().get();
    // Hand out the first node; chain the rest onto the free list in address
    // order so reuse patterns stay deterministic.
    for (std::size_t i = per_slab_; i-- > 1;) {
      base[i].next = free_;
      free_ = &base[i];
    }
    return base;
  }

  std::size_t per_slab_;
  std::vector<std::unique_ptr<Slot[]>> slabs_;
  Slot* free_ = nullptr;
  std::size_t outstanding_ = 0;
  std::uint64_t reused_ = 0;
};

/// Size-class free lists backing ArenaAlloc. Built for std::allocate_shared:
/// the allocator (holding a shared_ptr to this core) is copied into every
/// control block it creates, so outstanding shared/weak_ptrs keep the core
/// alive even after its owning object is destroyed — no destruction-order
/// hazards between e.g. an Engine's suspension registry and the arena that
/// allocated the suspension records.
class ArenaCore {
 public:
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kClasses = 16;  // blocks up to 1 KiB recycled

  ArenaCore() = default;
  ArenaCore(const ArenaCore&) = delete;
  ArenaCore& operator=(const ArenaCore&) = delete;
  ~ArenaCore() {
    for (void* head : free_) {
      while (head != nullptr) {
        void* next = *static_cast<void**>(head);
        ::operator delete(head);
        head = next;
      }
    }
  }

  void* allocate(std::size_t bytes) {
    const std::size_t cls = (bytes + kGranularity - 1) / kGranularity;
    if (GBC_POOLS_PASSTHROUGH || cls == 0 || cls > kClasses) {
      return ::operator new(bytes);
    }
    void*& head = free_[cls - 1];
    if (head != nullptr) {
      void* p = head;
      head = *static_cast<void**>(p);
      ++reused_;
      return p;
    }
    return ::operator new(cls * kGranularity);
  }

  void deallocate(void* p, std::size_t bytes) noexcept {
    const std::size_t cls = (bytes + kGranularity - 1) / kGranularity;
    if (GBC_POOLS_PASSTHROUGH || cls == 0 || cls > kClasses) {
      ::operator delete(p);
      return;
    }
    *static_cast<void**>(p) = free_[cls - 1];
    free_[cls - 1] = p;
  }

  /// Allocations served from a free list (recycled storage).
  std::uint64_t reused() const noexcept { return reused_; }

 private:
  void* free_[kClasses] = {};
  std::uint64_t reused_ = 0;
};

/// Allocator adapter over a shared ArenaCore, for std::allocate_shared.
template <typename T>
class ArenaAlloc {
 public:
  using value_type = T;

  explicit ArenaAlloc(std::shared_ptr<ArenaCore> core)
      : core_(std::move(core)) {}
  template <typename U>
  ArenaAlloc(const ArenaAlloc<U>& other) noexcept  // NOLINT: allocator rebind
      : core_(other.core()) {}

  T* allocate(std::size_t n) {
    if (n != 1) return static_cast<T*>(::operator new(n * sizeof(T)));
    return static_cast<T*>(core_->allocate(sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if (n != 1) {
      ::operator delete(p);
      return;
    }
    core_->deallocate(p, sizeof(T));
  }

  const std::shared_ptr<ArenaCore>& core() const noexcept { return core_; }

  friend bool operator==(const ArenaAlloc& a, const ArenaAlloc& b) noexcept {
    return a.core_ == b.core_;
  }

 private:
  std::shared_ptr<ArenaCore> core_;
};

namespace detail {
struct MsgBufHeader {
  std::uint32_t refs = 0;
  void* payload = nullptr;
  void (*release)(MsgBufHeader*) noexcept = nullptr;
};
}  // namespace detail

/// Type-erased, intrusively-refcounted handle to a pooled message payload.
/// Replaces shared_ptr<void> packet bodies: one pooled node holds refcount,
/// vtable-free release hook and payload together, and the (non-atomic)
/// refcount is engine-confined like everything else on the hot path.
class MsgBuf {
 public:
  MsgBuf() noexcept = default;
  MsgBuf(std::nullptr_t) noexcept {}  // NOLINT: keeps Packet{..., nullptr}
                                      // aggregate initializers working
  /// Adopts one reference (the pool's make() hands these out).
  explicit MsgBuf(detail::MsgBufHeader* h) noexcept : h_(h) {}

  MsgBuf(const MsgBuf& o) noexcept : h_(o.h_) {
    if (h_ != nullptr) ++h_->refs;
  }
  MsgBuf(MsgBuf&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  MsgBuf& operator=(const MsgBuf& o) noexcept {
    MsgBuf tmp(o);
    std::swap(h_, tmp.h_);
    return *this;
  }
  MsgBuf& operator=(MsgBuf&& o) noexcept {
    MsgBuf tmp(std::move(o));
    std::swap(h_, tmp.h_);
    return *this;
  }
  ~MsgBuf() { reset(); }

  void reset() noexcept {
    if (h_ != nullptr && --h_->refs == 0) h_->release(h_);
    h_ = nullptr;
  }

  explicit operator bool() const noexcept { return h_ != nullptr; }
  friend bool operator==(const MsgBuf& b, std::nullptr_t) noexcept {
    return b.h_ == nullptr;
  }

  /// The payload, as constructed by MsgPool<T>::make(). The caller asserts
  /// the type, exactly as with the static_pointer_cast it replaces.
  template <typename T>
  T* get() const noexcept {
    return h_ != nullptr ? static_cast<T*>(h_->payload) : nullptr;
  }

  std::uint32_t use_count() const noexcept {
    return h_ != nullptr ? h_->refs : 0;
  }

 private:
  detail::MsgBufHeader* h_ = nullptr;
};

/// Pool of refcounted T payloads handed out as MsgBuf. Orphan-safe: packets
/// captured in still-queued engine events can outlive the pool's owner (e.g.
/// MiniMPI dies before its Engine), so the backing storage is only torn down
/// once the pool is destroyed AND the last in-flight buffer has released.
template <typename T>
class MsgPool {
  struct Core;
  struct Node {
    Core* core = nullptr;
    detail::MsgBufHeader hdr;
    alignas(alignof(T)) std::byte value[sizeof(T)];
  };
  struct Core {
    Pool<Node> pool;
    std::size_t outstanding = 0;
    bool orphaned = false;
  };

 public:
  MsgPool() : core_(new Core) {}
  MsgPool(const MsgPool&) = delete;
  MsgPool& operator=(const MsgPool&) = delete;
  ~MsgPool() {
    if (core_->outstanding == 0) {
      delete core_;
    } else {
      core_->orphaned = true;  // last MsgBuf release deletes the core
    }
  }

  template <typename... Args>
  MsgBuf make(Args&&... args) {
    Node* n = core_->pool.acquire();
    n->core = core_;
    n->hdr.refs = 1;
    n->hdr.release = &MsgPool::release_node;
    n->hdr.payload =
        ::new (static_cast<void*>(n->value)) T(std::forward<Args>(args)...);
    ++core_->outstanding;
    return MsgBuf(&n->hdr);
  }

  std::size_t outstanding() const noexcept { return core_->outstanding; }
  std::uint64_t reused() const noexcept { return core_->pool.reused(); }

 private:
  static void release_node(detail::MsgBufHeader* h) noexcept {
    Node* n = reinterpret_cast<Node*>(reinterpret_cast<std::byte*>(h) -
                                      offsetof(Node, hdr));
    Core* core = n->core;
    static_cast<T*>(h->payload)->~T();
    core->pool.release(n);
    if (--core->outstanding == 0 && core->orphaned) delete core;
  }

  Core* core_;
};

/// Thread-local size-class recycler for coroutine frames. Frames for
/// send/recv/wait/pump/checkpoint coroutines are created and destroyed at
/// event rate; this keeps the storage on a per-thread free list. Blocks come
/// from plain ::operator new, so a frame freed on a different thread than it
/// was allocated on (the sweep pool moves engines between workers across
/// batches, never concurrently) just migrates to that thread's cache.
class FramePool {
 public:
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kClasses = 32;  // frames up to 2 KiB recycled

  static void* allocate(std::size_t n) {
    const std::size_t cls = (n + kGranularity - 1) / kGranularity;
    if (GBC_POOLS_PASSTHROUGH || cls == 0 || cls > kClasses) {
      return ::operator new(n);
    }
    void*& head = cache().free[cls - 1];
    if (head != nullptr) {
      void* p = head;
      head = *static_cast<void**>(p);
      return p;
    }
    return ::operator new(cls * kGranularity);
  }

  static void deallocate(void* p, std::size_t n) noexcept {
    const std::size_t cls = (n + kGranularity - 1) / kGranularity;
    if (GBC_POOLS_PASSTHROUGH || cls == 0 || cls > kClasses) {
      ::operator delete(p);
      return;
    }
    void*& head = cache().free[cls - 1];
    *static_cast<void**>(p) = head;
    head = p;
  }

 private:
  struct Cache {
    void* free[kClasses] = {};
    ~Cache() {
      for (void* head : free) {
        while (head != nullptr) {
          void* next = *static_cast<void**>(head);
          ::operator delete(head);
          head = next;
        }
      }
    }
  };
  static Cache& cache() {
    static thread_local Cache c;
    return c;
  }
};

/// Mixin for coroutine promise types: routes the coroutine frame through
/// FramePool. C++20 looks the operators up on the promise, so inheriting
/// this is all a promise type needs.
struct PooledFrame {
  static void* operator new(std::size_t n) { return FramePool::allocate(n); }
  static void operator delete(void* p, std::size_t n) noexcept {
    FramePool::deallocate(p, n);
  }
};

}  // namespace gbc::sim
