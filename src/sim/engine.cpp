#include "sim/engine.hpp"

#include <cassert>
#include <stdexcept>

namespace gbc::sim {

namespace {

// Detached driver coroutine: eagerly started, self-destroying.
struct Detached {
  struct promise_type {
    Detached get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

Detached drive(Engine* eng, Task<void> body) {
  try {
    co_await std::move(body);
  } catch (const SimAborted&) {
    // Normal teardown path.
  } catch (...) {
    eng->internal_process_error(std::current_exception());
  }
  eng->internal_process_exit();
}

}  // namespace

Engine::~Engine() = default;

void Engine::schedule_at(Time t, std::function<void()> fn) {
  assert(t >= now_ && "scheduling into the past");
  queue_.push(Event{t < now_ ? now_ : t, next_seq_++, std::move(fn)});
}

void Engine::schedule_after(Time delay, std::function<void()> fn) {
  schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
}

void Engine::spawn(Task<void> body) {
  ++live_;
  drive(this, std::move(body));
}

void Engine::step(Event& ev) {
  now_ = ev.t;
  ev.fn();
}

void Engine::run() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    step(ev);
    if (!errors_.empty()) {
      auto e = errors_.front();
      errors_.clear();
      std::rethrow_exception(e);
    }
  }
}

void Engine::run_until(Time t) {
  while (!queue_.empty() && queue_.top().t <= t) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    step(ev);
    if (!errors_.empty()) {
      auto e = errors_.front();
      errors_.clear();
      std::rethrow_exception(e);
    }
  }
  if (t > now_) now_ = t;
}

void Engine::abort_all() {
  aborted_ = true;
  // Resuming a suspension can cause other suspensions to deregister or new
  // (immediately-throwing) ones to appear, so drain by repeated sweeps.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = suspensions_.begin(); it != suspensions_.end();) {
      auto sp = it->lock();
      it = suspensions_.erase(it);
      if (sp && sp->alive && !sp->settled) {
        sp->settled = true;
        progressed = true;
        sp->handle.resume();
      }
    }
  }
  // Drop any queued callbacks; their targets checked `alive` anyway.
  while (!queue_.empty()) queue_.pop();
}

void Engine::register_suspension(const std::shared_ptr<SuspendState>& s) {
  suspensions_.push_back(s);
  if (--prune_countdown_ <= 0) {
    prune_countdown_ = 256;
    suspensions_.remove_if(
        [](const std::weak_ptr<SuspendState>& w) { return w.expired(); });
  }
}

void Engine::wake(const std::shared_ptr<SuspendState>& s) {
  if (s->settled) return;
  s->settled = true;
  schedule_now([s] {
    if (s->alive) s->handle.resume();
  });
}

void Engine::DelayAwaiter::await_suspend(std::coroutine_handle<> h) {
  state = std::make_shared<SuspendState>();
  state->handle = h;
  eng.register_suspension(state);
  auto s = state;
  eng.schedule_after(delay, [s] {
    if (s->settled) return;
    s->settled = true;
    if (s->alive) s->handle.resume();
  });
}

}  // namespace gbc::sim
