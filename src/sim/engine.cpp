#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace gbc::sim {

namespace {

// Detached driver coroutine: eagerly started, self-destroying.
struct Detached {
  struct promise_type : PooledFrame {
    Detached get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

Detached drive(Engine* eng, Task<void> body) {
  try {
    co_await std::move(body);
  } catch (const SimAborted&) {
    // Normal teardown path.
  } catch (...) {
    eng->internal_process_error(std::current_exception());
  }
  eng->internal_process_exit();
}

}  // namespace

Engine::~Engine() = default;

std::uint32_t Engine::acquire_slot(InlineFn fn) {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(fn);
    return slot;
  }
  slots_.push_back(std::move(fn));
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Engine::schedule_at(Time t, InlineFn fn) {
  assert(t >= now_ && "scheduling into the past");
  queue_.push(WheelEvent{t < now_ ? now_ : t, next_seq_++,
                         acquire_slot(std::move(fn))});
}

void Engine::schedule_after(Time delay, InlineFn fn) {
  schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
}

void Engine::schedule_at_back(Time t, InlineFn fn) {
  assert(t >= now_ && "scheduling into the past");
  queue_.push(WheelEvent{t < now_ ? now_ : t, next_seq_++ | kBackBand,
                         acquire_slot(std::move(fn))});
}

void Engine::schedule_at_reserved(Time t, std::uint64_t seq, InlineFn fn) {
  assert(t >= now_ && "scheduling into the past");
  assert(seq < next_seq_ && "sequence number was never reserved");
  queue_.push(WheelEvent{t, seq, acquire_slot(std::move(fn))});
}

void Engine::spawn(Task<void> body) {
  ++live_;
  drive(this, std::move(body));
}

void Engine::step(const WheelEvent& ev) {
  now_ = ev.t;
  ++events_;
  // Move the callable out before invoking: the callback may schedule new
  // events, which can recycle this slot or grow the slot vector.
  InlineFn fn = std::move(slots_[ev.slot]);
  free_slots_.push_back(ev.slot);
  fn();
}

void Engine::run() {
  WheelEvent ev;
  while (queue_.pop(kMaxSimTime, ev)) {
    step(ev);
    if (!errors_.empty()) {
      auto e = errors_.front();
      errors_.clear();
      std::rethrow_exception(e);
    }
  }
}

void Engine::run_until(Time t) {
  WheelEvent ev;
  while (queue_.pop(t, ev)) {
    step(ev);
    if (!errors_.empty()) {
      auto e = errors_.front();
      errors_.clear();
      std::rethrow_exception(e);
    }
  }
  if (t > now_) now_ = t;
}

void Engine::abort_all() {
  aborted_ = true;
  // Resuming a suspension can cause other suspensions to deregister or new
  // (immediately-throwing) ones to appear, so drain by repeated sweeps; any
  // suspensions registered during a sweep land in the fresh vector and are
  // handled by the next one.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    std::vector<std::weak_ptr<SuspendState>> batch;
    batch.swap(suspensions_);
    for (auto& w : batch) {
      auto sp = w.lock();
      if (sp && sp->alive && !sp->settled) {
        sp->settled = true;
        progressed = true;
        sp->handle.resume();
      }
    }
  }
  // Drop any queued callbacks; their targets checked `alive` anyway.
  queue_.clear();
  slots_.clear();
  free_slots_.clear();
}

void Engine::register_suspension(const std::shared_ptr<SuspendState>& s) {
  suspensions_.push_back(s);
  if (--prune_countdown_ <= 0) {
    std::erase_if(suspensions_,
                  [](const std::weak_ptr<SuspendState>& w) {
                    return w.expired();
                  });
    // Amortized: the next prune is at least half a vector's worth of
    // registrations away, so pruning stays O(1) per registration even when
    // most entries are long-lived.
    prune_countdown_ =
        std::max<int>(256, static_cast<int>(suspensions_.size()));
  }
}

void Engine::DelayAwaiter::await_suspend(std::coroutine_handle<> h) {
  state = eng.make_suspend_state();
  state->handle = h;
  eng.register_suspension(state);
  // Raw capture, not a shared_ptr copy: the awaiter's reference keeps the
  // record alive while the coroutine is suspended, the callback never
  // touches it after resume(), and a callback dropped unrun (abort_all /
  // teardown clears the queue) destroys only the pointer.
  eng.schedule_after(delay, [s = state.get()] {
    if (s->settled) return;
    s->settled = true;
    if (s->alive) s->handle.resume();
  });
}

}  // namespace gbc::sim
